//! The epoch loop: fold the feedback log, re-aggregate, publish.
//!
//! One [`EpochManager`] owns the persistent [`VectorGossipEngine`] (and its
//! worker pool) for the lifetime of the service and drives it through
//! [`GossipTrustAggregator::aggregate_with_engine`] once per epoch — each
//! epoch reuses the warmed-up pool instead of spawning threads, and each
//! epoch's gossip activity is recovered from the engine's monotonic
//! counters with [`GossipStats::diff`].
//!
//! Epochs are deterministic: epoch `e` always aggregates with the RNG seed
//! [`EpochManager::epoch_seed`]`(base_seed, e)` and warm-starts from the
//! previously published vector, so any published snapshot can be re-derived
//! bit-for-bit offline from its recorded `(matrix, start, seed)` triple
//! (the engine's parallel step is bit-identical to sequential for any
//! thread count, so even the thread knob does not perturb this).
//!
//! ## Graceful degradation
//!
//! An epoch publishes only when the aggregation converged (outer loop and
//! every gossip cycle) and produced finite scores. Anything else leaves the
//! previous snapshot serving and bumps the degradation counter — a
//! reputation service should keep answering with slightly stale, known-good
//! scores rather than serve a half-converged vector.

use crate::chaos::ChaosInjector;
use crate::log::FeedbackLog;
use crate::obs::ServiceObs;
use crate::snapshot::{ScoreSnapshot, SnapshotCell};
use crate::stats::ServiceStats;
use gossiptrust_core::params::Params;
use gossiptrust_gossip::cycle::GossipTrustAggregator;
use gossiptrust_gossip::engine::{EngineConfig, VectorGossipEngine};
use gossiptrust_gossip::stats::GossipStats;
use gossiptrust_gossip::UniformChooser;
use gossiptrust_obs::Stopwatch;
use gossiptrust_storage::ranks::RankStorageConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Fibonacci-hash multiplier used to derive per-epoch RNG seeds.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// What one epoch did, as reported to callers of `run_epoch_now`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochOutcome {
    /// 1-based epoch number.
    pub epoch: u64,
    /// Whether a new snapshot was published (false = degraded).
    pub published: bool,
    /// The snapshot version serving *after* this epoch (unchanged when
    /// degraded).
    pub live_version: u64,
    /// Power-iteration cycles the aggregation ran.
    pub cycles: usize,
    /// Whether the outer aggregation loop converged.
    pub converged: bool,
    /// Gossip activity of exactly this epoch.
    pub gossip: GossipStats,
    /// Wall-clock milliseconds (fold + aggregate + snapshot build).
    pub wall_ms: f64,
    /// Whether the epoch body panicked and was contained by the watchdog
    /// (engine rebuilt, previous snapshot kept serving).
    pub panicked: bool,
    /// Whether the epoch completed but blew its deadline and was abandoned
    /// (result discarded, previous snapshot kept serving).
    pub overran: bool,
}

/// Control messages for the epoch loop thread.
pub enum EpochCommand {
    /// Run one epoch immediately and send its outcome back.
    RunNow(Sender<EpochOutcome>),
    /// Stop the loop (the thread exits after the current epoch, if any).
    Shutdown,
}

/// Drives epochs over a [`FeedbackLog`], publishing into a [`SnapshotCell`].
pub struct EpochManager {
    log: Arc<FeedbackLog>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServiceStats>,
    aggregator: GossipTrustAggregator,
    engine: VectorGossipEngine,
    /// The engine's construction recipe, kept so the watchdog can rebuild
    /// a fresh engine after containing a mid-epoch panic (the half-stepped
    /// engine state is unknowable and must not leak into later epochs).
    engine_config: EngineConfig,
    rank_config: RankStorageConfig,
    base_seed: u64,
    epoch: u64,
    version: u64,
    /// Epoch numbers whose aggregation is deliberately crippled so it
    /// cannot converge — the failure-injection hook the degradation tests
    /// (and chaos drills) use.
    fail_epochs: Vec<u64>,
    /// Abandon epochs that overrun this wall-clock budget (`None` = never).
    deadline: Option<Duration>,
    /// Seeded epoch-path fault injector (`None` = no injected faults).
    chaos: Option<Arc<ChaosInjector>>,
    /// Observability bundle: one span per epoch (fold → aggregate →
    /// publish children) plus per-phase histograms. Managers built with
    /// [`new`](Self::new) get a detached bundle (nothing scrapes it);
    /// [`with_obs`](Self::with_obs) swaps in the service-wide one.
    obs: Arc<ServiceObs>,
}

impl EpochManager {
    /// Build a manager for the `log`/`cell`/`stats` triple.
    ///
    /// The persistent engine (and its worker pool, sized per
    /// `params.resolved_threads()`) is created here and reused for every
    /// healthy epoch.
    pub fn new(
        log: Arc<FeedbackLog>,
        cell: Arc<SnapshotCell>,
        stats: Arc<ServiceStats>,
        params: Params,
        rank_config: RankStorageConfig,
        base_seed: u64,
        fail_epochs: Vec<u64>,
    ) -> Self {
        let n = log.n();
        assert_eq!(params.n, n, "params.n must match the feedback log");
        let engine_config = EngineConfig::from_params(&params, n);
        let engine = VectorGossipEngine::new(n, engine_config.clone());
        let aggregator =
            GossipTrustAggregator::new(params).with_engine_config(engine_config.clone());
        // Versions continue from whatever snapshot is already live (the
        // bootstrap snapshot at service start).
        let version = cell.load().version;
        EpochManager {
            log,
            cell,
            stats,
            aggregator,
            engine,
            engine_config,
            rank_config,
            base_seed,
            epoch: 0,
            version,
            fail_epochs,
            deadline: None,
            chaos: None,
            obs: Arc::new(ServiceObs::new(64)),
        }
    }

    /// Builder-style setter: abandon epochs overrunning `deadline`.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style setter: inject epoch-path faults from `chaos`.
    pub fn with_chaos(mut self, chaos: Arc<ChaosInjector>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Builder-style setter: record into the shared observability bundle
    /// and attach the gossip engine's step-timing hooks to its registry.
    pub fn with_obs(mut self, obs: Arc<ServiceObs>) -> Self {
        self.engine.set_obs(Some(obs.engine.clone()));
        self.obs = obs;
        self
    }

    /// The deterministic RNG seed of epoch `epoch` under `base_seed`.
    pub fn epoch_seed(base_seed: u64, epoch: u64) -> u64 {
        base_seed ^ epoch.wrapping_mul(SEED_MIX)
    }

    /// Run exactly one epoch: fold → aggregate → publish (or degrade).
    ///
    /// The whole fold + aggregate body runs under the watchdog: a panic is
    /// contained (`catch_unwind`), counted, and answered by rebuilding the
    /// engine; a completed body that overran the deadline is abandoned.
    /// Either way the previous snapshot keeps serving — queries never
    /// observe a missing or half-built snapshot.
    pub fn run_epoch(&mut self) -> EpochOutcome {
        self.epoch += 1;
        let epoch = self.epoch;
        self.stats.note_epoch_started();
        let t0 = Stopwatch::start();
        // The epoch span: children (fold/aggregate/publish) open inside the
        // watchdog body; an injected panic unwinds them cleanly (the
        // torn-span guard stands down while panicking).
        let span = self.obs.tracer.span("epoch");
        let seed = Self::epoch_seed(self.base_seed, epoch);
        let fault = self.chaos.as_ref().and_then(|c| c.epoch_fault());

        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(fault) = fault {
                // Injected panic or overrun — materialized in `chaos`, the
                // one sanctioned fault site on the serving path.
                fault.materialize();
            }

            let fold_span = span.child("fold");
            // Shard-parallel fold (bit-identical to sequential): reuse the
            // engine's resolved thread count so one knob sizes both the
            // aggregation pool and the fold sweep.
            let matrix = Arc::new(self.log.fold_parallel(self.engine_config.threads));
            let start = self.cell.load().vector.clone();
            self.obs.epoch_fold_ns.record(fold_span.elapsed_ns());
            drop(fold_span);
            let mut rng = StdRng::seed_from_u64(seed);

            let aggregate_span = span.child("aggregate");
            let (report, delta) = if self.fail_epochs.contains(&epoch) {
                // Injected failure: a throwaway aggregator whose gossip budget
                // (2 steps) is below the engine's own min_steps floor, so no
                // cycle can ever report convergence. The persistent engine and
                // its counters are untouched.
                let crippled_params = Params { max_cycles: 1, ..self.aggregator.params().clone() };
                let crippled_config =
                    EngineConfig { max_steps: 2, threads: 1, ..self.engine.config().clone() };
                let crippled =
                    GossipTrustAggregator::new(crippled_params).with_engine_config(crippled_config);
                let report = crippled.aggregate_with(&matrix, &start, &UniformChooser, &mut rng);
                let delta = report.total_stats();
                (report, delta)
            } else {
                let before = self.engine.stats();
                let report = self.aggregator.aggregate_with_engine(
                    &mut self.engine,
                    &matrix,
                    &start,
                    &UniformChooser,
                    &mut rng,
                );
                let delta = self.engine.stats().diff(&before);
                (report, delta)
            };
            self.obs.epoch_aggregate_ns.record(aggregate_span.elapsed_ns());
            drop(aggregate_span);
            (matrix, start, report, delta)
        }));

        let wall_ms = t0.elapsed_ms_f64();
        self.obs.epoch_total_ns.record(t0.elapsed_ns());
        let (matrix, start, report, delta) = match body {
            Ok(parts) => parts,
            Err(_) => {
                // The panic may have left the worker pool or vector buffers
                // half-stepped; a fresh engine is the only state we can
                // trust. The previous snapshot keeps serving.
                self.engine = VectorGossipEngine::new(self.log.n(), self.engine_config.clone());
                self.engine.set_obs(Some(self.obs.engine.clone()));
                self.stats.note_epoch_panicked(wall_ms);
                return EpochOutcome {
                    epoch,
                    published: false,
                    live_version: self.version,
                    cycles: 0,
                    converged: false,
                    gossip: GossipStats::default(),
                    wall_ms,
                    panicked: true,
                    overran: false,
                };
            }
        };

        if self.deadline.is_some_and(|d| t0.elapsed() > d) {
            // The result arrived too late to be worth publishing: by now a
            // fresher fold exists, and a service that blocks its epoch loop
            // on stragglers falls permanently behind. Discard, keep serving
            // the previous snapshot, absorb the burned gossip work.
            self.stats.note_epoch_overrun(&delta, wall_ms);
            return EpochOutcome {
                epoch,
                published: false,
                live_version: self.version,
                cycles: report.cycles,
                converged: report.converged,
                gossip: delta,
                wall_ms,
                panicked: false,
                overran: true,
            };
        }

        let healthy = report.converged
            && report.per_cycle.iter().all(|c| c.gossip_converged)
            && report.vector.values().iter().all(|v| v.is_finite());

        if healthy {
            #[cfg(feature = "invariants")]
            gossiptrust_core::invariants::check_row_stochastic(&matrix, "EpochManager::run_epoch");
            let publish_span = span.child("publish");
            self.version += 1;
            self.cell.publish(ScoreSnapshot::from_vector(
                self.version,
                epoch,
                seed,
                start,
                Some(matrix),
                report.vector.clone(),
                self.rank_config,
                delta,
                report.cycles,
                report.converged,
                wall_ms,
            ));
            self.obs.epoch_publish_ns.record(publish_span.elapsed_ns());
            drop(publish_span);
            #[cfg(feature = "invariants")]
            self.verify_replay();
        }
        self.stats.note_epoch_finished(healthy, &delta, wall_ms);

        EpochOutcome {
            epoch,
            published: healthy,
            live_version: self.version,
            cycles: report.cycles,
            converged: report.converged,
            gossip: delta,
            wall_ms,
            panicked: false,
            overran: false,
        }
    }

    /// Re-derive the just-published snapshot from its recorded
    /// `(matrix, start, seed)` triple with a fresh aggregator and require
    /// the score hashes to match **exactly** — the snapshot-replay
    /// determinism contract, enforced after every publish while the
    /// `invariants` feature is on.
    #[cfg(feature = "invariants")]
    fn verify_replay(&self) {
        let snap = self.cell.load();
        let matrix = snap.matrix.as_ref().expect("published snapshot records its matrix");
        let replay = GossipTrustAggregator::new(self.aggregator.params().clone())
            .with_engine_config(self.engine.config().clone())
            .aggregate_with(
                matrix,
                &snap.start,
                &UniformChooser,
                &mut StdRng::seed_from_u64(snap.seed),
            );
        let published = score_hash(snap.vector.values());
        let replayed = score_hash(replay.vector.values());
        assert_eq!(
            replayed, published,
            "invariant violated [EpochManager::run_epoch]: epoch {} snapshot (version {}) \
             does not replay bit-for-bit from its recorded (matrix, start, seed): \
             replay hash {replayed:#018x} vs published {published:#018x}",
            snap.epoch, snap.version
        );
    }

    /// The epoch-loop thread body: tick every `interval` (or only on
    /// command when `interval` is `None`), handling [`EpochCommand`]s
    /// between ticks. Returns when told to shut down or when all command
    /// senders are gone.
    pub fn run_loop(mut self, interval: Option<Duration>, commands: Receiver<EpochCommand>) {
        loop {
            let command = match interval {
                Some(period) => match commands.recv_timeout(period) {
                    Ok(cmd) => Some(cmd),
                    Err(RecvTimeoutError::Timeout) => {
                        self.run_epoch();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => None,
                },
                None => commands.recv().ok(),
            };
            match command {
                Some(EpochCommand::RunNow(reply)) => {
                    let outcome = self.run_epoch();
                    // A dropped reply receiver just means the caller gave up
                    // waiting; the epoch still ran and published.
                    let _ = reply.send(outcome);
                }
                Some(EpochCommand::Shutdown) | None => return,
            }
        }
    }
}

/// FNV-1a over the raw bit patterns of a score vector — the stable
/// fingerprint the snapshot-replay invariant compares. Bit patterns, not
/// values: the contract is bit-for-bit reproducibility, so `-0.0` vs
/// `0.0` (or any rounding drift) must be visible to the hash.
#[cfg(feature = "invariants")]
fn score_hash(scores: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in scores {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::FeedbackEvent;
    use gossiptrust_core::id::NodeId;

    fn setup(
        n: usize,
        fail: Vec<u64>,
    ) -> (Arc<FeedbackLog>, Arc<SnapshotCell>, Arc<ServiceStats>, EpochManager) {
        let log = Arc::new(FeedbackLog::new(n, 4));
        let cell = Arc::new(SnapshotCell::new(ScoreSnapshot::bootstrap(
            n,
            7,
            RankStorageConfig::default(),
        )));
        let stats = Arc::new(ServiceStats::new());
        let params = Params::for_network(n).with_threads(2);
        let mgr = EpochManager::new(
            Arc::clone(&log),
            Arc::clone(&cell),
            Arc::clone(&stats),
            params,
            RankStorageConfig::default(),
            7,
            fail,
        );
        (log, cell, stats, mgr)
    }

    fn ring_feedback(log: &FeedbackLog, n: usize) {
        for i in 0..n {
            log.record(FeedbackEvent {
                rater: NodeId::from_index(i),
                target: NodeId::from_index((i + 1) % n),
                score: 2.0 + (i % 3) as f64,
            });
        }
    }

    #[test]
    fn healthy_epoch_publishes_next_version() {
        let (log, cell, stats, mut mgr) = setup(24, vec![]);
        ring_feedback(&log, 24);
        let outcome = mgr.run_epoch();
        assert!(outcome.published, "ring matrix must converge");
        assert_eq!(outcome.live_version, 1);
        let snap = cell.load();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.epoch, 1);
        assert!(snap.matrix.is_some());
        assert!(outcome.gossip.steps > 0, "epoch delta must capture activity");
        assert_eq!(stats.epochs_published(), 1);
        assert_eq!(stats.epochs_degraded(), 0);
    }

    #[test]
    fn injected_failure_degrades_and_keeps_previous_snapshot() {
        let (log, cell, stats, mut mgr) = setup(24, vec![2]);
        ring_feedback(&log, 24);
        assert!(mgr.run_epoch().published);
        let before = cell.load();
        let failed = mgr.run_epoch();
        assert!(!failed.published, "epoch 2 is crippled and must degrade");
        assert!(!failed.converged);
        let after = cell.load();
        assert_eq!(after.version, before.version, "previous snapshot stays live");
        assert_eq!(stats.epochs_degraded(), 1);
        // The loop recovers on the next (healthy) epoch.
        let recovered = mgr.run_epoch();
        assert!(recovered.published);
        assert_eq!(cell.load().version, before.version + 1);
        assert_eq!(cell.load().epoch, 3, "epoch numbering skips the failed epoch");
    }

    #[test]
    fn epochs_are_reproducible_from_recorded_inputs() {
        let (log, cell, _stats, mut mgr) = setup(24, vec![]);
        ring_feedback(&log, 24);
        mgr.run_epoch();
        let snap = cell.load();
        let matrix = snap.matrix.as_ref().expect("published snapshot records its matrix");
        let params = Params::for_network(24).with_threads(2);
        let replay = GossipTrustAggregator::new(params.clone())
            .with_engine_config(EngineConfig::from_params(&params, 24))
            .aggregate_with(
                matrix,
                &snap.start,
                &UniformChooser,
                &mut StdRng::seed_from_u64(snap.seed),
            );
        assert_eq!(
            replay.vector.values(),
            snap.vector.values(),
            "published scores must replay bit-for-bit from (matrix, start, seed)"
        );
    }

    /// With the `invariants` feature on, every healthy `run_epoch` above
    /// already re-derives its snapshot internally; this test seeds a
    /// *tampered* snapshot and proves the replay checker trips on it.
    #[cfg(feature = "invariants")]
    #[test]
    #[should_panic(expected = "does not replay bit-for-bit")]
    fn tampered_snapshot_trips_the_replay_checker() {
        use gossiptrust_core::vector::ReputationVector;
        let (log, cell, _stats, mut mgr) = setup(24, vec![]);
        ring_feedback(&log, 24);
        assert!(mgr.run_epoch().published);
        // Overwrite the published scores with something the recorded
        // (matrix, start, seed) cannot reproduce.
        let mut snap = (*cell.load()).clone();
        snap.version += 1;
        snap.vector = ReputationVector::from_weights((1..=24).map(|i| i as f64).collect()).unwrap();
        cell.publish(snap);
        mgr.verify_replay();
    }

    #[test]
    fn watchdog_contains_injected_panics_and_recovers() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        let (log, cell, stats, mgr) = setup(24, vec![]);
        let chaos = Arc::new(ChaosInjector::new(ChaosConfig {
            epoch_panic_per_mille: 1000,
            ..ChaosConfig::disabled(9)
        }));
        let mut mgr = mgr.with_chaos(Arc::clone(&chaos));
        ring_feedback(&log, 24);
        let before = cell.load();
        let outcome = mgr.run_epoch();
        assert!(outcome.panicked, "a certain-panic injector must trip the watchdog");
        assert!(!outcome.published);
        assert_eq!(cell.load().version, before.version, "previous snapshot stays live");
        assert_eq!(stats.epochs_abandoned(), 1);
        assert_eq!(chaos.report().epochs_panicked, 1);
        // Disarm the chaos: the rebuilt engine must aggregate and publish.
        mgr.chaos = None;
        let recovered = mgr.run_epoch();
        assert!(recovered.published, "rebuilt engine must recover");
        assert!(!recovered.panicked);
        assert_eq!(cell.load().version, before.version + 1);
    }

    #[test]
    fn deadline_abandons_overrunning_epochs() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        let (log, cell, stats, mgr) = setup(24, vec![]);
        let chaos = Arc::new(ChaosInjector::new(ChaosConfig {
            epoch_overrun_per_mille: 1000,
            overrun_ms: 30,
            ..ChaosConfig::disabled(9)
        }));
        let mut mgr = mgr.with_deadline(Duration::from_millis(5)).with_chaos(chaos);
        ring_feedback(&log, 24);
        let outcome = mgr.run_epoch();
        assert!(outcome.overran, "a 30ms stall under a 5ms deadline must be abandoned");
        assert!(!outcome.published);
        assert_eq!(cell.load().version, 0, "abandoned result must not publish");
        assert_eq!(stats.epochs_abandoned(), 1);
        // Disarm the chaos: the same manager publishes within the deadline.
        mgr.chaos = None;
        assert!(mgr.run_epoch().published);
        assert_eq!(cell.load().version, 1);
    }

    #[test]
    fn epochs_emit_spans_and_phase_timings() {
        use gossiptrust_obs::trace::EventKind;
        let (log, _cell, _stats, mgr) = setup(24, vec![]);
        let obs = Arc::new(ServiceObs::new(256));
        let mut mgr = mgr.with_obs(Arc::clone(&obs));
        ring_feedback(&log, 24);
        assert!(mgr.run_epoch().published);
        let events = obs.tracer.events();
        let starts: Vec<_> = events.iter().filter(|e| e.kind == EventKind::Start).collect();
        let epoch_id = starts.iter().find(|e| e.name == "epoch").expect("epoch span").span_id;
        for phase in ["fold", "aggregate", "publish"] {
            let child = starts
                .iter()
                .find(|e| e.name == phase)
                .unwrap_or_else(|| panic!("published epoch must emit a {phase} child span"));
            assert_eq!(child.parent_id, epoch_id, "{phase} must be a child of the epoch span");
        }
        assert_eq!(obs.epoch_fold_ns.count(), 1);
        assert_eq!(obs.epoch_aggregate_ns.count(), 1);
        assert_eq!(obs.epoch_publish_ns.count(), 1);
        assert_eq!(obs.epoch_total_ns.count(), 1);
        assert!(obs.engine.step_ns.count() > 0, "engine hooks must be attached via with_obs");
        // Aggregate dominates the epoch; its histogram must say so.
        assert!(obs.epoch_total_ns.max() >= obs.epoch_aggregate_ns.max());
    }

    #[test]
    fn contained_panic_leaves_no_torn_spans() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        use gossiptrust_obs::trace::EventKind;
        let (log, _cell, _stats, mgr) = setup(24, vec![]);
        let obs = Arc::new(ServiceObs::new(256));
        let chaos = Arc::new(ChaosInjector::new(ChaosConfig {
            epoch_panic_per_mille: 1000,
            ..ChaosConfig::disabled(9)
        }));
        let mut mgr = mgr.with_obs(Arc::clone(&obs)).with_chaos(chaos);
        ring_feedback(&log, 24);
        assert!(mgr.run_epoch().panicked);
        // The watchdog epoch still closes its span; every Start has an End.
        let events = obs.tracer.events();
        let starts = events.iter().filter(|e| e.kind == EventKind::Start).count();
        let ends = events.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(starts, ends, "spans must balance even through a contained panic");
    }

    #[test]
    fn epoch_seed_is_injective_enough() {
        let seeds: Vec<u64> = (1..=64).map(|e| EpochManager::epoch_seed(42, e)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "epoch seeds must not collide");
    }
}
