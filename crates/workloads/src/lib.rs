//! # gossiptrust-workloads
//!
//! Workload generators reproducing the simulation setup of §6.1 of the
//! GossipTrust paper:
//!
//! * [`powerlaw`] — bounded power-law / Zipf samplers, including the
//!   two-segment query-popularity distribution (`φ = 0.63` for ranks 1–250,
//!   `φ = 1.24` below) and a degree-sequence generator tuned to hit the
//!   paper's feedback parameters (`d_max = 200`, `d_avg = 20`).
//! * [`population`] — peer populations: honest vs. malicious peers
//!   (fraction `γ`), collusion groups, and each peer's intrinsic service
//!   authenticity rate.
//! * [`feedback`] — the feedback-graph generator: power-law out-degrees,
//!   per-edge simulated transactions, and the *honest* vs. *polluted*
//!   trust-matrix pair used by every robustness experiment (the honest
//!   matrix is the ground truth for Eq. 8's "calculated" scores; the
//!   polluted one is what the reputation system actually sees).
//! * [`saroiu`] — per-peer shared-file counts following a skewed
//!   (bounded-Pareto) distribution in the spirit of Saroiu et al.'s
//!   Gnutella measurements.
//! * [`files`] — the file catalog: 100 000 files whose copy counts follow a
//!   power law with popularity rate `φ = 1.2`, distributed over peers.
//! * [`queries`] — query generation over the catalog with the two-segment
//!   popularity law.
//! * [`scenario`] — one-stop bundle tying population + feedback together
//!   for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feedback;
pub mod files;
pub mod population;
pub mod powerlaw;
pub mod queries;
pub mod saroiu;
pub mod scenario;

pub use feedback::{FeedbackConfig, FeedbackOutcome};
pub use files::FileCatalog;
pub use population::{PeerKind, Population, ThreatConfig};
pub use powerlaw::{BoundedPareto, DegreeSequence, TwoSegmentZipf, Zipf};
pub use queries::QueryWorkload;
pub use scenario::{Scenario, ScenarioConfig};
