//! The in-process service front-end: lifecycle + query/ingest handle.
//!
//! [`ReputationService::start`] wires the three shared pieces together
//! (feedback log, snapshot cell, stats), spawns the epoch-loop thread, and
//! hands out cloneable [`ServiceHandle`]s. A handle is `Send + Sync + Clone`
//! and cheap to pass to every ingest and query thread (three `Arc`s and an
//! `mpsc` sender).
//!
//! Queries pin one published snapshot for their whole execution: the
//! version returned inside each view is the version every field of that
//! view came from, which is what makes torn reads impossible by
//! construction.

use crate::chaos::{ChaosConfig, ChaosInjector, ChaosReport};
use crate::epoch::{EpochCommand, EpochManager, EpochOutcome};
use crate::log::{FeedbackEvent, FeedbackLog};
use crate::obs::ServiceObs;
use crate::snapshot::{ScoreSnapshot, SnapshotCell};
use crate::stats::{ServiceStats, StatsReport};
use crate::wal::{GroupCommitObs, GroupCommitWal, Wal};
use gossiptrust_core::id::NodeId;
use gossiptrust_core::params::Params;
use gossiptrust_obs::Stopwatch;
use gossiptrust_storage::ranks::RankStorageConfig;
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// GossipTrust parameters; `params.n` fixes the peer population.
    pub params: Params,
    /// Ingest shard count of the feedback log.
    pub shards: usize,
    /// Bloom rank-bucket configuration for published snapshots.
    pub rank_config: RankStorageConfig,
    /// Base RNG seed; epoch `e` runs with `EpochManager::epoch_seed(base, e)`.
    pub base_seed: u64,
    /// Period of the automatic epoch loop; `None` = epochs run only on
    /// [`ServiceHandle::run_epoch_now`] (the mode tests use).
    pub epoch_interval: Option<Duration>,
    /// Epoch numbers whose aggregation is deliberately crippled (failure
    /// injection for degradation tests and chaos drills).
    pub fail_epochs: Vec<u64>,
    /// Bound on the unfolded ingest backlog (`GT_INGEST_QUEUE`); further
    /// ingest sheds with the retriable [`ServeError::Overloaded`] until an
    /// epoch folds the backlog down.
    pub ingest_queue: usize,
    /// Directory of the crash-recovery write-ahead log (`GT_WAL_DIR`);
    /// `None` = no WAL, feedback lives only in memory.
    pub wal_dir: Option<PathBuf>,
    /// Abandon an epoch whose fold + aggregate overruns this budget
    /// (`GT_EPOCH_DEADLINE_MS`); `None` = no deadline.
    pub epoch_deadline: Option<Duration>,
    /// Seeded fault injection for the epoch path (`GT_CHAOS_SEED` arms the
    /// soak mix in the serve binary); `None` = no injected faults.
    pub chaos: Option<ChaosConfig>,
    /// Capacity of the observability trace ring, in events
    /// (`GT_OBS_EVENTS`).
    pub obs_events: usize,
    /// Maximum records the WAL writer thread coalesces into one group
    /// commit (`GT_WAL_GROUP_MAX`).
    pub wal_group_max: usize,
    /// Deadline on one WAL group drain, in microseconds
    /// (`GT_WAL_GROUP_US`); only bites under saturation.
    pub wal_group_us: u64,
}

impl ServiceConfig {
    /// Defaults for an `n`-peer network: Table 2 parameters, 16 ingest
    /// shards, default rank buckets, manual epochs.
    pub fn new(n: usize) -> Self {
        ServiceConfig {
            params: Params::for_network(n),
            shards: 16,
            rank_config: RankStorageConfig::default(),
            base_seed: 42,
            epoch_interval: None,
            fail_epochs: Vec::new(),
            ingest_queue: 65_536,
            wal_dir: None,
            epoch_deadline: None,
            chaos: None,
            obs_events: 4096,
            wal_group_max: 512,
            wal_group_us: 200,
        }
    }

    /// Read the epoch period from `GT_EPOCH_MS` (strictly parsed — a
    /// malformed value panics), falling back to `default_ms`.
    pub fn with_epoch_interval_from_env(mut self, default_ms: u64) -> Self {
        let ms = gossiptrust_core::params::strict_positive_env("GT_EPOCH_MS").unwrap_or(default_ms);
        self.epoch_interval = Some(Duration::from_millis(ms));
        self
    }

    /// Builder-style setter for the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder-style setter for the ingest-backlog bound.
    pub fn with_ingest_queue(mut self, capacity: usize) -> Self {
        self.ingest_queue = capacity;
        self
    }

    /// Builder-style setter for the WAL directory (enables crash recovery).
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Builder-style setter for the epoch deadline.
    pub fn with_epoch_deadline(mut self, deadline: Duration) -> Self {
        self.epoch_deadline = Some(deadline);
        self
    }

    /// Builder-style setter for epoch-path fault injection.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Builder-style setter for the trace-ring capacity.
    pub fn with_obs_events(mut self, events: usize) -> Self {
        self.obs_events = events;
        self
    }

    /// Builder-style setter for the WAL group-commit knobs (max records
    /// per group, drain deadline in microseconds).
    pub fn with_wal_group(mut self, group_max: usize, group_us: u64) -> Self {
        self.wal_group_max = group_max;
        self.wal_group_us = group_us;
        self
    }
}

/// Errors surfaced by the query/ingest API (and mapped onto the wire by
/// the TCP front-end).
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// A peer id at or beyond the population size.
    UnknownPeer {
        /// The offending id.
        peer: u32,
        /// The population size.
        n: usize,
    },
    /// The epoch loop has shut down.
    Stopped,
    /// A malformed request (TCP front-end parse errors land here).
    BadRequest(String),
    /// The unfolded ingest backlog is at capacity; the request was shed.
    /// Retriable — the next epoch fold drains the backlog.
    Overloaded {
        /// Unfolded events pending at shed time.
        pending: u64,
        /// The configured backlog bound (`GT_INGEST_QUEUE`).
        capacity: u64,
    },
    /// The write-ahead log could not persist the feedback; the event was
    /// NOT applied (the durability guarantee is applied ⊇ acknowledged).
    Wal(String),
}

impl ServeError {
    /// Whether a client should retry this error after backing off.
    pub fn retriable(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownPeer { peer, n } => {
                write!(f, "unknown peer {peer} (population is 0..{n})")
            }
            ServeError::Stopped => write!(f, "service is shut down"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { pending, capacity } => {
                write!(f, "overloaded: {pending} events pending (capacity {capacity}), retry later")
            }
            ServeError::Wal(msg) => write!(f, "write-ahead log failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One peer's score, pinned to the snapshot it came from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreView {
    /// The queried peer.
    pub peer: NodeId,
    /// Its global reputation score in the pinned snapshot.
    pub score: f64,
    /// Version of the snapshot answering this query.
    pub version: u64,
    /// Epoch that produced the snapshot.
    pub epoch: u64,
}

/// One peer's rank, exact and Bloom-approximate, from one snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankView {
    /// The queried peer.
    pub peer: NodeId,
    /// Exact 0-based rank (0 = most reputable).
    pub exact_rank: u32,
    /// Approximate rank level from the Bloom buckets (false positives can
    /// only promote, per the paper's storage scheme).
    pub bloom_level: usize,
    /// Number of Bloom rank levels in the snapshot.
    pub levels: usize,
    /// Version of the snapshot answering this query.
    pub version: u64,
}

/// The top-`k` peers by score, from one snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKView {
    /// `(peer, score)` pairs, descending by score (ties by ascending id).
    pub peers: Vec<(NodeId, f64)>,
    /// Version of the snapshot answering this query.
    pub version: u64,
}

/// Cloneable, thread-safe handle for ingest and queries.
#[derive(Clone)]
pub struct ServiceHandle {
    log: Arc<FeedbackLog>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServiceStats>,
    commands: Sender<EpochCommand>,
    /// Crash-recovery WAL behind the group-commit writer thread; every
    /// ingest submits here and blocks for its group's flush *before*
    /// applying to the in-memory log, so a `kill -9` can lose
    /// unacknowledged events but never acknowledged ones (at-least-once on
    /// replay). Submissions from concurrent connections coalesce into one
    /// `write_all` + `flush` instead of serializing on a file mutex.
    wal: Option<Arc<GroupCommitWal>>,
    /// Admission-gate bound on `log.pending_events()`.
    ingest_capacity: u64,
    /// Shared observability bundle — same registry the epoch loop and the
    /// gossip engine record into.
    obs: Arc<ServiceObs>,
    /// Chaos injector handle, so a metrics scrape can include the fault
    /// counters (`None` = chaos off, counters export as zeros).
    chaos: Option<Arc<ChaosInjector>>,
}

impl ServiceHandle {
    /// Peer population size.
    pub fn n(&self) -> usize {
        self.log.n()
    }

    fn check_peer(&self, peer: NodeId) -> Result<(), ServeError> {
        if peer.index() < self.n() {
            Ok(())
        } else {
            Err(ServeError::UnknownPeer { peer: peer.0, n: self.n() })
        }
    }

    /// The bounded-queue admission gate: shed (retriably) when the
    /// unfolded backlog is already at capacity. Load-shedding at admission
    /// keeps memory bounded and converts overload into explicit, visible
    /// backpressure instead of unbounded buffering.
    fn admit(&self) -> Result<(), ServeError> {
        let pending = self.log.pending_events();
        if pending >= self.ingest_capacity {
            self.stats.note_request_shed();
            return Err(ServeError::Overloaded { pending, capacity: self.ingest_capacity });
        }
        Ok(())
    }

    /// Ingest one rating into the next epoch's matrix.
    ///
    /// Sheds with [`ServeError::Overloaded`] when the unfolded backlog is
    /// at capacity. With a WAL configured, the event is durable before the
    /// `Ok` acknowledgment.
    pub fn record(&self, rater: NodeId, target: NodeId, score: f64) -> Result<(), ServeError> {
        let sw = Stopwatch::start();
        self.check_peer(rater)?;
        self.check_peer(target)?;
        self.admit()?;
        let event = FeedbackEvent { rater, target, score };
        if let Some(wal) = &self.wal {
            let fsync = Stopwatch::start();
            wal.append(&event).map_err(ServeError::Wal)?;
            self.obs.wal_fsync_ns.record(fsync.elapsed_ns());
            self.stats.note_wal_appended(1);
        }
        self.log.record(event);
        self.obs.ingest_ns.record(sw.elapsed_ns());
        Ok(())
    }

    /// Ingest a batch of ratings from one rater (one shard lock, one WAL
    /// write). Admission is checked once for the whole batch.
    pub fn record_batch(&self, rater: NodeId, ratings: &[(NodeId, f64)]) -> Result<(), ServeError> {
        let sw = Stopwatch::start();
        self.check_peer(rater)?;
        for &(target, _) in ratings {
            self.check_peer(target)?;
        }
        self.admit()?;
        if let Some(wal) = &self.wal {
            let fsync = Stopwatch::start();
            wal.append_batch(rater, ratings).map_err(ServeError::Wal)?;
            self.obs.wal_fsync_ns.record(fsync.elapsed_ns());
            self.stats.note_wal_appended(ratings.len() as u64);
        }
        self.log.record_batch(rater, ratings);
        self.obs.ingest_ns.record(sw.elapsed_ns());
        Ok(())
    }

    /// Pin the latest published snapshot (for multi-call consistency).
    pub fn snapshot(&self) -> Arc<ScoreSnapshot> {
        self.cell.load()
    }

    /// Look up one peer's score in the latest snapshot.
    pub fn get_score(&self, peer: NodeId) -> Result<ScoreView, ServeError> {
        let sw = Stopwatch::start();
        self.check_peer(peer)?;
        let snap = self.cell.load();
        self.stats.note_query();
        let view = ScoreView {
            peer,
            score: snap.vector.score(peer),
            version: snap.version,
            epoch: snap.epoch,
        };
        self.obs.query_ns.record(sw.elapsed_ns());
        Ok(view)
    }

    /// The top-`k` peers by score in the latest snapshot (`k` is clamped
    /// to the population size).
    pub fn top_k(&self, k: usize) -> TopKView {
        let sw = Stopwatch::start();
        let snap = self.cell.load();
        self.stats.note_query();
        let peers = snap
            .ranking
            .iter()
            .take(k)
            .map(|&id| (id, snap.vector.score(id)))
            .collect();
        let view = TopKView { peers, version: snap.version };
        self.obs.query_ns.record(sw.elapsed_ns());
        view
    }

    /// One peer's exact rank and Bloom rank level in the latest snapshot.
    pub fn rank_of(&self, peer: NodeId) -> Result<RankView, ServeError> {
        let sw = Stopwatch::start();
        self.check_peer(peer)?;
        let snap = self.cell.load();
        self.stats.note_query();
        let view = RankView {
            peer,
            exact_rank: snap.exact_rank(peer),
            bloom_level: snap.bloom_rank_level(peer),
            levels: snap.ranks.levels(),
            version: snap.version,
        };
        self.obs.query_ns.record(sw.elapsed_ns());
        Ok(view)
    }

    /// Current service counters.
    pub fn stats_report(&self) -> StatsReport {
        self.stats.report()
    }

    /// Total feedback events ingested so far.
    pub fn events_ingested(&self) -> u64 {
        self.log.events()
    }

    /// Unfolded ingest backlog (what the admission gate bounds).
    pub fn pending_events(&self) -> u64 {
        self.log.pending_events()
    }

    /// Clone out the raw accumulated local-trust rows — the audit surface
    /// the chaos soak uses to prove no acknowledged feedback was lost.
    pub fn raw_rows(&self) -> Vec<gossiptrust_core::local::LocalTrust> {
        self.log.raw_rows()
    }

    /// The shared counter block (for front-ends that bump connection-level
    /// counters).
    pub(crate) fn service_stats(&self) -> Arc<ServiceStats> {
        Arc::clone(&self.stats)
    }

    /// The shared observability bundle (registry + tracer + handles).
    pub fn obs(&self) -> Arc<ServiceObs> {
        Arc::clone(&self.obs)
    }

    /// The full Prometheus text exposition of this service right now:
    /// every registry metric plus the [`StatsReport`] and chaos counters.
    pub fn metrics_text(&self) -> String {
        let chaos = self.chaos.as_ref().map(|c| c.report());
        self.obs.export(&self.stats.report(), chaos.as_ref())
    }

    /// Run one epoch immediately and wait for its outcome.
    pub fn run_epoch_now(&self) -> Result<EpochOutcome, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.commands
            .send(EpochCommand::RunNow(tx))
            .map_err(|_| ServeError::Stopped)?;
        rx.recv().map_err(|_| ServeError::Stopped)
    }
}

/// The running service: owns the epoch-loop thread.
///
/// Dropping (or calling [`ReputationService::shutdown`]) stops the loop;
/// outstanding [`ServiceHandle`]s keep answering queries against the last
/// published snapshot but can no longer trigger epochs.
pub struct ReputationService {
    handle: ServiceHandle,
    commands: Sender<EpochCommand>,
    worker: Option<JoinHandle<()>>,
    chaos: Option<Arc<ChaosInjector>>,
}

impl ReputationService {
    /// Validate `config`, replay the WAL (if configured), publish the
    /// bootstrap snapshot, and spawn the epoch loop.
    ///
    /// # Panics
    ///
    /// Panics when `config.params` fails validation, when the WAL
    /// directory cannot be opened or belongs to a different population, or
    /// when the chaos config is over-unity — a service with out-of-domain
    /// configuration should not come up at all.
    pub fn start(config: ServiceConfig) -> Self {
        config.params.validate().expect("invalid service parameters");
        let n = config.params.n;
        let log = Arc::new(FeedbackLog::new(n, config.shards));
        let cell = Arc::new(SnapshotCell::new(ScoreSnapshot::bootstrap(
            n,
            config.base_seed,
            config.rank_config,
        )));
        let stats = Arc::new(ServiceStats::new());
        let obs = Arc::new(ServiceObs::new(config.obs_events));
        let wal = config.wal_dir.as_ref().map(|dir| {
            let (wal, replay) = Wal::open(dir, n)
                .unwrap_or_else(|e| panic!("cannot open WAL in {}: {e}", dir.display()));
            // Replay straight into the log (not through the handle): the
            // records are already durable, and replay bypasses both the
            // admission gate and re-appending.
            for event in &replay.events {
                log.record(*event);
            }
            stats.note_wal_replayed(replay.events.len() as u64);
            // Hand the recovered file to the group-commit writer thread;
            // from here on, ingest submits and the writer owns the fd.
            Arc::new(GroupCommitWal::start(
                wal,
                config.wal_group_max,
                Duration::from_micros(config.wal_group_us),
                GroupCommitObs {
                    group_records: Some(Arc::clone(&obs.wal_group_records)),
                    commit_ns: Some(Arc::clone(&obs.wal_commit_ns)),
                },
            ))
        });
        let chaos = config.chaos.map(|c| Arc::new(ChaosInjector::new(c)));
        let mut manager = EpochManager::new(
            Arc::clone(&log),
            Arc::clone(&cell),
            Arc::clone(&stats),
            config.params,
            config.rank_config,
            config.base_seed,
            config.fail_epochs,
        )
        .with_obs(Arc::clone(&obs));
        if let Some(deadline) = config.epoch_deadline {
            manager = manager.with_deadline(deadline);
        }
        if let Some(injector) = &chaos {
            manager = manager.with_chaos(Arc::clone(injector));
        }
        let (tx, rx) = mpsc::channel();
        let interval = config.epoch_interval;
        let worker = std::thread::Builder::new()
            .name("gt-epoch".into())
            .spawn(move || manager.run_loop(interval, rx))
            .expect("spawn epoch loop");
        let handle = ServiceHandle {
            log,
            cell,
            stats,
            commands: tx.clone(),
            wal,
            ingest_capacity: config.ingest_queue.max(1) as u64,
            obs,
            chaos: chaos.clone(),
        };
        ReputationService { handle, commands: tx, worker: Some(worker), chaos }
    }

    /// Counters of the faults the epoch-path injector has dealt so far
    /// (`None` when the service runs without chaos).
    pub fn chaos_report(&self) -> Option<ChaosReport> {
        self.chaos.as_ref().map(|c| c.report())
    }

    /// A cloneable ingest/query handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Seed the feedback log from pre-existing local-trust rows (e.g. a
    /// generated workload) before the first epoch.
    pub fn seed_rows(&self, rows: &[gossiptrust_core::local::LocalTrust]) {
        self.handle.log.seed_rows(rows);
    }

    /// Stop the epoch loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.commands.send(EpochCommand::Shutdown);
            let _ = worker.join();
        }
    }
}

impl Drop for ReputationService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_service(n: usize) -> ReputationService {
        let service = ReputationService::start(ServiceConfig::new(n));
        let h = service.handle();
        for i in 0..n {
            h.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0 + (i % 2) as f64)
                .expect("in range");
        }
        service
    }

    #[test]
    fn bootstrap_serves_uniform_before_first_epoch() {
        let service = ReputationService::start(ServiceConfig::new(10));
        let h = service.handle();
        let view = h.get_score(NodeId(3)).expect("in range");
        assert_eq!(view.version, 0);
        assert!((view.score - 0.1).abs() < 1e-12);
        service.shutdown();
    }

    #[test]
    fn epoch_now_publishes_and_queries_see_it() {
        let service = ring_service(20);
        let h = service.handle();
        let outcome = h.run_epoch_now().expect("loop alive");
        assert!(outcome.published);
        let view = h.get_score(NodeId(0)).expect("in range");
        assert_eq!(view.version, 1);
        let top = h.top_k(5);
        assert_eq!(top.peers.len(), 5);
        assert_eq!(top.version, 1);
        let rank = h.rank_of(top.peers[0].0).expect("in range");
        assert_eq!(rank.exact_rank, 0);
        assert_eq!(h.stats_report().queries_served, 3);
        service.shutdown();
    }

    #[test]
    fn unknown_peer_is_an_error_not_a_panic() {
        let service = ReputationService::start(ServiceConfig::new(5));
        let h = service.handle();
        assert_eq!(h.get_score(NodeId(5)), Err(ServeError::UnknownPeer { peer: 5, n: 5 }));
        assert!(h.record(NodeId(0), NodeId(9), 1.0).is_err());
        service.shutdown();
    }

    #[test]
    fn handle_reports_stopped_after_shutdown() {
        let service = ReputationService::start(ServiceConfig::new(5));
        let h = service.handle();
        service.shutdown();
        assert_eq!(h.run_epoch_now(), Err(ServeError::Stopped));
        // Queries still answer from the last snapshot.
        assert!(h.get_score(NodeId(1)).is_ok());
    }

    #[test]
    fn top_k_clamps_to_population() {
        let service = ring_service(6);
        let h = service.handle();
        h.run_epoch_now().expect("loop alive");
        assert_eq!(h.top_k(100).peers.len(), 6);
        service.shutdown();
    }

    #[test]
    fn admission_gate_sheds_retriably_and_recovers_after_a_fold() {
        let service = ReputationService::start(ServiceConfig::new(8).with_ingest_queue(4));
        let h = service.handle();
        for i in 0..4 {
            h.record(NodeId::from_index(i), NodeId::from_index((i + 1) % 8), 1.0)
                .expect("under capacity");
        }
        let err = h.record(NodeId(0), NodeId(1), 1.0).expect_err("backlog at capacity");
        assert_eq!(err, ServeError::Overloaded { pending: 4, capacity: 4 });
        assert!(err.retriable(), "overload must be advertised as retriable");
        assert!(h.record_batch(NodeId(0), &[(NodeId(1), 1.0)]).is_err());
        assert_eq!(h.stats_report().requests_shed, 2);
        // An epoch folds the backlog down; ingest admits again.
        h.run_epoch_now().expect("loop alive");
        assert_eq!(h.pending_events(), 0);
        assert!(h.record(NodeId(0), NodeId(1), 1.0).is_ok());
        service.shutdown();
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gt-svc-test-{}-{tag}-{serial}", std::process::id()))
    }

    /// Flatten the raw rows into comparable `(rater, target, amount)`
    /// triples, preserving per-row insertion order.
    fn flat_rows(h: &ServiceHandle) -> Vec<(usize, Vec<(NodeId, f64)>)> {
        h.raw_rows()
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.iter_raw().collect()))
            .collect()
    }

    /// Satellite regression: a writer-thread I/O failure must surface as a
    /// typed `ServeError::Wal` on the submitting connection, with no ack
    /// and no in-memory application (applied ⊇ acknowledged holds even
    /// when the disk dies).
    #[test]
    fn wal_write_failure_is_typed_and_applies_nothing() {
        let dir = scratch_dir("walfail");
        let (wal, _) = Wal::open(&dir, 6).expect("open");
        let path = wal.path().to_path_buf();
        drop(wal);
        // A read-only fd: every group commit the writer attempts fails.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .open(&path)
            .expect("reopen read-only");
        let doomed = GroupCommitWal::start(
            Wal::from_file_for_tests(file, path),
            8,
            Duration::from_micros(100),
            GroupCommitObs::default(),
        );
        let (commands, _rx) = mpsc::channel();
        let handle = ServiceHandle {
            log: Arc::new(FeedbackLog::new(6, 2)),
            cell: Arc::new(SnapshotCell::new(ScoreSnapshot::bootstrap(
                6,
                1,
                RankStorageConfig::default(),
            ))),
            stats: Arc::new(ServiceStats::new()),
            commands,
            wal: Some(Arc::new(doomed)),
            ingest_capacity: 100,
            obs: Arc::new(ServiceObs::new(64)),
            chaos: None,
        };
        let err = handle
            .record(NodeId(0), NodeId(1), 1.0)
            .expect_err("commit must fail");
        assert!(matches!(err, ServeError::Wal(_)), "failure must be typed: {err:?}");
        assert!(!err.retriable(), "a WAL failure is not a backpressure signal");
        let err = handle
            .record_batch(NodeId(2), &[(NodeId(3), 1.0), (NodeId(4), 2.0)])
            .expect_err("batch commit must fail");
        assert!(matches!(err, ServeError::Wal(_)));
        assert_eq!(handle.events_ingested(), 0, "failed commits must not apply to the log");
        assert_eq!(handle.stats_report().wal_appended_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_restart_replays_acknowledged_feedback_exactly() {
        let dir = scratch_dir("restart");
        let before = {
            let service = ReputationService::start(ServiceConfig::new(6).with_wal_dir(&dir));
            let h = service.handle();
            h.record(NodeId(0), NodeId(1), 2.5).expect("in range");
            h.record(NodeId(0), NodeId(1), 1.5).expect("in range");
            h.record_batch(NodeId(4), &[(NodeId(2), 1.0), (NodeId(5), 3.0)])
                .expect("in range");
            assert_eq!(h.stats_report().wal_appended_records, 4);
            let rows = flat_rows(&h);
            service.shutdown();
            rows
        };
        // "Restart": a fresh service on the same WAL dir replays every
        // acknowledged event into an identical accumulated state.
        let service = ReputationService::start(ServiceConfig::new(6).with_wal_dir(&dir));
        let h = service.handle();
        assert_eq!(h.stats_report().wal_replayed_records, 4);
        assert_eq!(h.events_ingested(), 4);
        assert_eq!(flat_rows(&h), before);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
