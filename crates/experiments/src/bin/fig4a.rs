//! Reproduce Fig. 4(a): RMS aggregation error vs percentage of independent
//! malicious peers, for greedy factors α ∈ {0, 0.15, 0.3}.

use gossiptrust_experiments::figures::fig4a;
use gossiptrust_experiments::{gossip_threads, Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 4(a) — RMS error (Eq. 8) vs %% independent malicious peers, n = {} ({scale:?} scale)\n",
        scale.n()
    );
    println!("gossip threads: {} (override with GT_THREADS)\n", gossip_threads());
    let rows = fig4a(scale);
    let mut t = TextTable::new(vec!["alpha", "gamma", "rms error", "std"]);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.alpha),
            format!("{:.0}%", r.gamma * 100.0),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: error grows with γ; α = 0.15 (power nodes) beats");
    println!("α = 0 by ~20%; raising α to 0.3 does not improve on 0.15.");
}
