//! The gt-lint rule set.
//!
//! Each rule walks the token stream of one file (see [`crate::lexer`]) and
//! reports [`Violation`]s. The rules encode *repo-specific* contracts the
//! compiler cannot see — see `DESIGN.md` §8 for the rationale behind each.
//!
//! | rule            | contract                                             |
//! |-----------------|------------------------------------------------------|
//! | `float-eq`      | no `==`/`!=` (or `assert_eq!`) on float literals in  |
//! |                 | non-test code — float equality is almost always a    |
//! |                 | tolerance bug; exact-sentinel sites need a waiver    |
//! | `env-var`       | no `std::env::var`/`var_os` outside `core::params` — |
//! |                 | every knob goes through the strict parsers           |
//! | `hash-iter`     | no `HashMap`/`HashSet` in the deterministic kernels  |
//! |                 | (`gossip`, `core`, `service::epoch`) — iteration     |
//! |                 | order would silently break replayability             |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]`   |
//! | `entropy`       | no ambient entropy (`thread_rng`, `rand::rng()`,     |
//! |                 | `from_entropy`, `from_os_rng`) outside designated    |
//! |                 | seeding/bench modules                                |
//! | `time-source`   | no raw clock reads (`Instant::now`,                  |
//! |                 | `SystemTime::now`) outside `crates/obs` — all timing |
//! |                 | goes through `Stopwatch`/`Deadline`, so the          |
//! |                 | determinism audit for clock reads stays lexical      |

use crate::lexer::{Token, TokenKind};

/// Stable identifiers of every rule, as used in `lint.toml` waivers.
///
/// The first six are per-file token rules implemented here; the
/// `taint-*`, `panic-path` and `async-discipline` families are
/// workspace-level call-graph rules implemented in [`crate::analysis`].
pub const RULE_NAMES: &[&str] = &[
    "float-eq",
    "env-var",
    "hash-iter",
    "forbid-unsafe",
    "entropy",
    "time-source",
    "taint-clock",
    "taint-entropy",
    "taint-env",
    "taint-hash",
    "panic-path",
    "async-discipline",
];

/// One finding: rule, location, human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
}

/// How a file participates in the rule set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileRole {
    /// Integration test / bench / example file (relaxes `float-eq`).
    pub is_test_file: bool,
    /// Inside a deterministic kernel (`hash-iter` applies).
    pub is_kernel: bool,
    /// A crate root that must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Inside `crates/obs` — the one sanctioned clock surface, exempt
    /// from `time-source`.
    pub is_clock_surface: bool,
}

/// Classify `rel` (a `/`-separated repo-relative path).
pub fn classify(rel: &str) -> FileRole {
    let is_test_file = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/");
    let is_kernel = rel.starts_with("crates/gossip/src/")
        || rel.starts_with("crates/core/src/")
        || rel == "crates/service/src/epoch.rs";
    let is_crate_root =
        rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
    let is_clock_surface = rel.starts_with("crates/obs/");
    FileRole { is_test_file, is_kernel, is_crate_root, is_clock_surface }
}

/// Run every applicable rule over one tokenized file.
pub fn check_file(rel: &str, tokens: &[Token], role: FileRole) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_test = test_spans(tokens);
    if !role.is_test_file {
        float_eq(rel, tokens, &in_test, &mut out);
    }
    env_var(rel, tokens, &mut out);
    if role.is_kernel {
        hash_iter(rel, tokens, &mut out);
    }
    if role.is_crate_root {
        forbid_unsafe(rel, tokens, &mut out);
    }
    entropy(rel, tokens, &mut out);
    if !role.is_clock_surface {
        time_source(rel, tokens, &mut out);
    }
    out
}

/// Mark every token index that lies inside a `#[cfg(test)] mod … { … }`
/// block (or a block whose `cfg` attribute mentions `test`, e.g.
/// `#[cfg(all(test, feature = "x"))]`). Unit-test modules get the same
/// float-comparison latitude as integration-test files: pinning exact
/// constants is what tests are *for*.
fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            // Scan the attribute body for `cfg` … `test`.
            let Some(close) = matching(tokens, i + 1, "[", "]") else {
                break;
            };
            let body = &tokens[i + 2..close];
            let mentions_cfg_test =
                body.iter().any(|t| t.is_ident("cfg")) && body.iter().any(|t| t.is_ident("test"));
            let mut j = close + 1;
            if mentions_cfg_test {
                // Skip any further attributes between the cfg and the item.
                while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[")
                {
                    match matching(tokens, j + 1, "[", "]") {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                if j < tokens.len() && tokens[j].is_ident("mod") {
                    // mod <name> { … }
                    let mut k = j + 1;
                    while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
                        k += 1;
                    }
                    if k < tokens.len() && tokens[k].is_punct("{") {
                        if let Some(end) = matching(tokens, k, "{", "}") {
                            for m in mask.iter_mut().take(end + 1).skip(i) {
                                *m = true;
                            }
                            i = end + 1;
                            continue;
                        }
                    }
                }
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// True if `tokens[k]` is a float literal or a `f64::`/`f32::` special
/// constant path (`f64::NAN`, `f32::INFINITY`, …).
fn is_float_operand(tokens: &[Token], k: usize) -> bool {
    if tokens[k].kind == TokenKind::Float {
        return true;
    }
    if (tokens[k].is_ident("f64") || tokens[k].is_ident("f32"))
        && k + 2 < tokens.len()
        && tokens[k + 1].is_punct("::")
        && tokens[k + 2].kind == TokenKind::Ident
    {
        return matches!(
            tokens[k + 2].text.as_str(),
            "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON" | "MIN_POSITIVE" | "MAX" | "MIN"
        );
    }
    false
}

/// Tokens that terminate an operand scan (at relative bracket depth 0).
fn is_operand_boundary(t: &Token) -> bool {
    if t.kind == TokenKind::Ident {
        return matches!(
            t.text.as_str(),
            "if" | "while" | "match" | "let" | "return" | "else" | "for" | "in" | "assert"
        );
    }
    t.kind == TokenKind::Punct
        && matches!(
            t.text.as_str(),
            "," | ";" | "{" | "}" | "=" | "==" | "!=" | "&&" | "||" | "=>" | "->" | "?"
        )
}

/// Rule `float-eq`: `==`/`!=` whose operand (either side, same bracket
/// depth) contains a float literal, plus `assert_eq!`/`assert_ne!`
/// invocations containing float literals. Non-test code only.
fn float_eq(rel: &str, tokens: &[Token], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if t.is_punct("==") || t.is_punct("!=") {
            if comparison_involves_float(tokens, i) {
                out.push(Violation {
                    rule: "float-eq",
                    path: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "exact float `{}` comparison — compare against a tolerance, or add a \
                         lint.toml waiver if the sentinel is exact by construction",
                        t.text
                    ),
                });
            }
        } else if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "assert_eq" | "assert_ne" | "debug_assert_eq" | "debug_assert_ne"
            )
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("!")
            && tokens[i + 2].is_punct("(")
        {
            if let Some(close) = matching(tokens, i + 2, "(", ")") {
                if (i + 3..close).any(|k| is_float_operand(tokens, k)) {
                    out.push(Violation {
                        rule: "float-eq",
                        path: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "`{}!` on a float literal — use an epsilon comparison",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// Scan outward from the comparison operator at `op`: does either operand
/// contain a float literal (at the operator's bracket depth)?
fn comparison_involves_float(tokens: &[Token], op: usize) -> bool {
    // Left: walk backwards. Closing brackets push us into nested depth we
    // skip over; an opening bracket below our depth is the boundary.
    let mut depth = 0i32;
    let mut k = op;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        if depth == 0 && is_operand_boundary(t) {
            break;
        }
        if depth == 0 && is_float_operand(tokens, k) {
            return true;
        }
    }
    // Right: walk forwards.
    let mut depth = 0i32;
    let mut k = op;
    while k + 1 < tokens.len() {
        k += 1;
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        if depth == 0 && is_operand_boundary(t) {
            break;
        }
        if depth == 0 && is_float_operand(tokens, k) {
            return true;
        }
    }
    false
}

/// Rule `env-var`: any `env::var` / `env::var_os` read. Writing
/// (`set_var`, used by tests to stage their own knobs) is fine; reading
/// belongs in `core::params`, which holds the one waiver.
fn env_var(rel: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("env")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("::")
            && (tokens[i + 2].is_ident("var") || tokens[i + 2].is_ident("var_os"))
        {
            out.push(Violation {
                rule: "env-var",
                path: rel.to_string(),
                line: t.line,
                message: format!(
                    "raw `env::{}` read — route the knob through a `core::params` accessor \
                     (strict parsing, one audited surface)",
                    tokens[i + 2].text
                ),
            });
        }
    }
}

/// Rule `hash-iter`: `HashMap`/`HashSet` anywhere in a deterministic
/// kernel. Even "only lookups today" drifts into iteration tomorrow;
/// kernels use `BTreeMap`/sorted vectors so replay stays bit-exact.
fn hash_iter(rel: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for t in tokens {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Violation {
                rule: "hash-iter",
                path: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{}` in a deterministic kernel — iteration order is unstable across \
                     runs; use `BTreeMap`/`BTreeSet` or a sorted Vec",
                    t.text
                ),
            });
        }
    }
}

/// Rule `forbid-unsafe`: the crate root must carry the inner attribute
/// `#![forbid(unsafe_code)]`.
fn forbid_unsafe(rel: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        if tokens[i].is_punct("#")
            && tokens[i + 1].is_punct("!")
            && tokens[i + 2].is_punct("[")
            && tokens[i + 3].is_ident("forbid")
            && tokens[i + 4].is_punct("(")
        {
            if let Some(close) = matching(tokens, i + 4, "(", ")") {
                if (i + 5..close).any(|k| tokens[k].is_ident("unsafe_code")) {
                    return;
                }
            }
        }
        i += 1;
    }
    out.push(Violation {
        rule: "forbid-unsafe",
        path: rel.to_string(),
        line: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    });
}

/// Rule `entropy`: ambient randomness / wall-clock entropy. Deterministic
/// replay (epoch snapshots, bit-identical parallel steps) only holds when
/// every random draw flows from an explicit seed.
fn entropy(rel: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        let flagged = if t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
            || t.is_ident("from_os_rng")
        {
            Some(t.text.clone())
        } else if t.is_ident("rand")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("::")
            && tokens[i + 2].is_ident("rng")
        {
            Some("rand::rng".to_string())
        } else {
            None
        };
        if let Some(what) = flagged {
            out.push(Violation {
                rule: "entropy",
                path: rel.to_string(),
                line: t.line,
                message: format!(
                    "ambient entropy source `{what}` — take a caller-supplied seeded RNG \
                     (or waive for a designated seeding/bench module)"
                ),
            });
        }
    }
}

/// Rule `time-source`: raw wall/monotonic clock reads (`Instant::now`,
/// `SystemTime::now`) anywhere outside `crates/obs`. The obs crate's
/// `Stopwatch`/`Deadline` are the only sanctioned clock surface, which
/// keeps the "does this code read time?" audit lexical — a module that
/// never names those types provably never reads the clock.
fn time_source(rel: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("::")
            && tokens[i + 2].is_ident("now")
        {
            out.push(Violation {
                rule: "time-source",
                path: rel.to_string(),
                line: t.line,
                message: format!(
                    "raw `{}::now` clock read — use `gossiptrust_obs::Stopwatch`/`Deadline` \
                     (the obs crate is the only sanctioned clock surface)",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        check_file(rel, &tokenize(src), classify(rel))
    }

    const KERNEL: &str = "crates/gossip/src/some.rs";
    const PLAIN: &str = "crates/workloads/src/some.rs";

    #[test]
    fn float_eq_catches_literal_comparisons() {
        let v = run(PLAIN, "fn f(x: f64) -> bool { x == 1.0 }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-eq");
        let v = run(PLAIN, "fn f(x: f64) -> bool { 0.5 != x }");
        assert_eq!(v.len(), 1);
        let v = run(PLAIN, "fn f(x: f64) -> bool { x == f64::INFINITY }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn float_eq_catches_assert_eq_with_float_literal() {
        let v = run(PLAIN, "fn f(x: f64) { assert_eq!(x, 0.25); }");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("assert_eq"));
    }

    #[test]
    fn float_eq_ignores_int_and_ordering_comparisons() {
        assert!(run(PLAIN, "fn f(x: usize) -> bool { x == 1 }").is_empty());
        assert!(run(PLAIN, "fn f(x: f64) -> bool { x > 1.0 && x <= 2.0 }").is_empty());
        assert!(run(PLAIN, "fn f(x: f64) -> bool { (x - 1.0).abs() < 1e-9 }").is_empty());
    }

    #[test]
    fn float_eq_boundary_does_not_bleed_across_arguments() {
        // The float literal is a *different* argument of the call: the `,`
        // boundary must stop the operand scan.
        assert!(run(PLAIN, "fn f(a: usize, b: f64) { g(a == 1, 2.5); }").is_empty());
    }

    #[test]
    fn float_eq_skips_cfg_test_modules_and_test_files() {
        let src = "#[cfg(test)] mod tests { fn f(x: f64) -> bool { x == 1.0 } }";
        assert!(run(PLAIN, src).is_empty());
        assert!(
            run("crates/workloads/tests/props.rs", "fn f(x: f64) -> bool { x == 1.0 }").is_empty()
        );
        // …but code *before* the test module is still checked.
        let src = "fn g(x: f64) -> bool { x == 2.0 } #[cfg(test)] mod tests {}";
        assert_eq!(run(PLAIN, src).len(), 1);
    }

    #[test]
    fn env_var_flags_reads_not_writes() {
        let v = run(PLAIN, "fn f() { let _ = std::env::var(\"GT_X\"); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "env-var");
        assert!(run(PLAIN, "fn f() { std::env::set_var(\"GT_X\", \"1\"); }").is_empty());
        // var_os is a read too.
        assert_eq!(run(PLAIN, "fn f() { let _ = std::env::var_os(\"GT_X\"); }").len(), 1);
    }

    #[test]
    fn env_var_applies_inside_tests_too() {
        let src = "#[cfg(test)] mod tests { fn f() { let _ = std::env::var(\"GT_X\"); } }";
        assert_eq!(run(PLAIN, src).len(), 1);
    }

    #[test]
    fn hash_iter_only_fires_in_kernels() {
        let src = "use std::collections::HashMap; fn f(m: &HashMap<u32, u32>) {}";
        let v = run(KERNEL, src);
        assert_eq!(v.len(), 2); // the use and the parameter
        assert!(v.iter().all(|v| v.rule == "hash-iter"));
        assert!(run(PLAIN, src).is_empty());
        assert!(run(KERNEL, "use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn epoch_rs_is_a_kernel() {
        assert!(classify("crates/service/src/epoch.rs").is_kernel);
        assert!(!classify("crates/service/src/server.rs").is_kernel);
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots() {
        let root = "crates/foo/src/lib.rs";
        assert!(classify(root).is_crate_root);
        let v = run(root, "//! docs\npub mod a;");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbid-unsafe");
        assert!(run(root, "#![forbid(unsafe_code)]\npub mod a;").is_empty());
        // Other attributes before it are fine.
        assert!(run(root, "#![warn(missing_docs)]\n#![forbid(unsafe_code)]").is_empty());
        // A non-root file is not required to carry it.
        assert!(run("crates/foo/src/a.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn entropy_sources_are_flagged() {
        for src in [
            "fn f() { let mut r = rand::thread_rng(); }",
            "fn f() { let mut r = rand::rng(); }",
            "fn f() { let r = StdRng::from_entropy(); }",
            "fn f() { let r = StdRng::from_os_rng(); }",
        ] {
            let v = run(PLAIN, src);
            assert_eq!(v.len(), 1, "expected 1 violation for {src}");
            assert_eq!(v[0].rule, "entropy");
        }
        // Seeded construction is the sanctioned path.
        assert!(run(PLAIN, "fn f() { let r = StdRng::seed_from_u64(7); }").is_empty());
    }

    #[test]
    fn time_source_flags_raw_clock_reads_outside_obs() {
        for src in [
            "fn f() { let t = std::time::Instant::now(); }",
            "fn f() { let t = tokio::time::Instant::now(); }",
            "fn f() { let t = std::time::SystemTime::now(); }",
        ] {
            let v = run(PLAIN, src);
            assert_eq!(v.len(), 1, "expected 1 violation for {src}");
            assert_eq!(v[0].rule, "time-source");
            assert!(v[0].message.contains("Stopwatch"));
        }
        // The rule applies inside test modules and test files too — a
        // flaky sleep-and-check in a test is still a clock read.
        let in_tests = "#[cfg(test)] mod tests { fn f() { let t = Instant::now(); } }";
        assert_eq!(run(PLAIN, in_tests).len(), 1);
        // The obs crate is the sanctioned surface.
        assert!(classify("crates/obs/src/time.rs").is_clock_surface);
        assert!(run("crates/obs/src/time.rs", "fn f() { let t = Instant::now(); }").is_empty());
        // Other uses of the types (arithmetic, elapsed) are fine.
        assert!(run(PLAIN, "fn f(t: Instant) -> Duration { t.elapsed() }").is_empty());
    }

    #[test]
    fn violation_lines_are_accurate() {
        let v = run(PLAIN, "fn a() {}\nfn f(x: f64) -> bool {\n    x == 1.0\n}");
        assert_eq!(v[0].line, 3);
    }
}
