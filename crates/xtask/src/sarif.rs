//! SARIF 2.1.0 emission — hand-rolled, dependency-free.
//!
//! The output targets GitHub code scanning: one run, one driver
//! (`gt-lint`), one `result` per violation with a physical location, so a
//! CI upload annotates the offending lines right in the PR diff. Only the
//! small subset of SARIF that code scanning reads is emitted.

use crate::rules::{Violation, RULE_NAMES};

/// Minimal JSON string escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One-line description per rule, shown by SARIF viewers.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "float-eq" => "No exact float equality in non-test code",
        "env-var" => "Environment reads only through core::params",
        "hash-iter" => "No HashMap/HashSet in deterministic kernels",
        "forbid-unsafe" => "Crate roots must carry #![forbid(unsafe_code)]",
        "entropy" => "No ambient entropy; randomness flows from explicit seeds",
        "time-source" => "Raw clock reads only inside crates/obs",
        "taint-clock" => "No transitive clock reads from deterministic sinks",
        "taint-entropy" => "No transitive ambient entropy from deterministic sinks",
        "taint-env" => "No transitive environment reads from deterministic sinks",
        "taint-hash" => "No transitive HashMap/HashSet use from deterministic sinks",
        "panic-path" => "No panic-capable sites reachable from serving roots",
        "async-discipline" => "No blocking calls or sync guards across .await in async fns",
        _ => "gt-lint rule",
    }
}

/// Serialize violations as a SARIF 2.1.0 log.
///
/// The full rule set is always declared (so a clean run still names its
/// rules), and every violation becomes an `error`-level result.
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut rules_json = String::new();
    for (i, r) in RULE_NAMES.iter().enumerate() {
        if i > 0 {
            rules_json.push(',');
        }
        rules_json.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            esc(r),
            esc(rule_description(r))
        ));
    }
    let mut results_json = String::new();
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            results_json.push(',');
        }
        results_json.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            esc(v.rule),
            esc(&v.message),
            esc(&v.path),
            v.line.max(1)
        ));
    }
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"gt-lint\",\
         \"informationUri\":\"https://example.org/gossiptrust\",\"rules\":[{rules_json}]}}}},\
         \"results\":[{results_json}]}}]}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_declares_rules_and_no_results() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"gt-lint\""));
        assert!(s.contains("\"results\":[]"));
        for r in RULE_NAMES {
            assert!(s.contains(&format!("\"id\":\"{r}\"")), "missing rule {r}");
        }
    }

    #[test]
    fn violations_become_located_results() {
        let v = Violation {
            rule: "panic-path",
            path: "crates/service/src/server.rs".into(),
            line: 42,
            message: "a \"quoted\" message\nwith newline".into(),
        };
        let s = to_sarif(&[v]);
        assert!(s.contains("\"ruleId\":\"panic-path\""));
        assert!(s.contains("\"startLine\":42"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("\\n"));
        assert!(!s.contains('\n'), "output must be single-line JSON");
    }
}
