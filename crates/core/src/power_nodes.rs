//! Power-node selection and the greedy-factor `α` prior mixing.
//!
//! GossipTrust inherits *power nodes* from PowerTrust: after each round of
//! global reputation computation, the most reputable peers (up to `q`,
//! defaulting to 1% of `n`) are designated power nodes for the next round.
//! The *greedy factor* `α` expresses "the eagerness for a peer to work with
//! selected power nodes": each aggregation cycle computes
//!
//! ```text
//! V(t+1) = (1 − α) · Sᵀ·V(t) + α · P
//! ```
//!
//! where `P` is the uniform distribution over the current power-node set
//! (uniform over *all* nodes before the first scores exist). Besides the
//! accuracy benefit measured in Fig. 4, the mixing makes the iteration
//! matrix primitive, guaranteeing a unique stationary vector — the same
//! role the pre-trusted-peer jump plays in EigenTrust.

use crate::id::NodeId;
use crate::vector::ReputationVector;
use serde::{Deserialize, Serialize};

/// A prior distribution `P` over nodes used for the `α`-mixing jump.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    n: usize,
    /// Sparse support: nodes with non-zero prior mass and that mass.
    /// Empty support encodes the uniform prior over all `n` nodes.
    support: Vec<(NodeId, f64)>,
}

impl Prior {
    /// The uniform prior over all `n` nodes (`p_j = 1/n`).
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "prior needs at least one node");
        Prior { n, support: Vec::new() }
    }

    /// A prior uniform over the given `nodes` (the power-node set).
    ///
    /// Falls back to the all-nodes uniform prior when `nodes` is empty, so
    /// that the mixing step never loses probability mass.
    pub fn over_nodes(n: usize, nodes: &[NodeId]) -> Self {
        assert!(n > 0, "prior needs at least one node");
        if nodes.is_empty() {
            return Prior::uniform(n);
        }
        let mass = 1.0 / nodes.len() as f64;
        let mut support: Vec<(NodeId, f64)> = nodes.iter().map(|&id| (id, mass)).collect();
        support.sort_by_key(|(id, _)| *id);
        support.dedup_by_key(|(id, _)| *id);
        // Re-normalize in case of duplicates in the input.
        let total: f64 = support.iter().map(|(_, m)| m).sum();
        for (_, m) in &mut support {
            *m /= total;
        }
        Prior { n, support }
    }

    /// Network size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Prior mass `p_j` of node `j`.
    pub fn density(&self, j: NodeId) -> f64 {
        if self.support.is_empty() {
            return 1.0 / self.n as f64;
        }
        self.support
            .binary_search_by_key(&j, |(id, _)| *id)
            .map(|pos| self.support[pos].1)
            .unwrap_or(0.0)
    }

    /// True when this is the uniform prior over all nodes.
    pub fn is_uniform(&self) -> bool {
        self.support.is_empty()
    }

    /// The nodes carrying prior mass (empty for the uniform prior).
    pub fn support_nodes(&self) -> Vec<NodeId> {
        self.support.iter().map(|(id, _)| *id).collect()
    }

    /// Materialize the full dense prior vector of length `n`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.n];
        if self.support.is_empty() {
            p.fill(1.0 / self.n as f64);
        } else {
            for &(id, m) in &self.support {
                p[id.index()] = m;
            }
        }
        p
    }

    /// Apply the greedy-factor mixing in place:
    /// `v[j] ← (1 − α)·v[j] + α·p_j`.
    ///
    /// # Panics
    /// Panics if `v.len() != n` or `α ∉ [0, 1]`.
    pub fn mix_into(&self, v: &mut [f64], alpha: f64) {
        assert_eq!(v.len(), self.n, "vector length must equal n");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        if alpha == 0.0 {
            return;
        }
        if self.support.is_empty() {
            let jump = alpha / self.n as f64;
            for x in v.iter_mut() {
                *x = (1.0 - alpha) * *x + jump;
            }
        } else {
            for x in v.iter_mut() {
                *x *= 1.0 - alpha;
            }
            for &(id, m) in &self.support {
                v[id.index()] += alpha * m;
            }
        }
    }
}

/// Selects the power-node set from a converged reputation vector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerNodeSelector {
    /// Maximum number of power nodes `q` (Table 2 default: 1% of `n`).
    pub max_power_nodes: usize,
}

impl PowerNodeSelector {
    /// Selector keeping at most `q` power nodes.
    pub fn new(max_power_nodes: usize) -> Self {
        PowerNodeSelector { max_power_nodes }
    }

    /// Selector with the paper's default `q = max(n/100, 1)`.
    pub fn for_network(n: usize) -> Self {
        PowerNodeSelector::new((n / 100).max(1))
    }

    /// The top-`q` most reputable nodes of `v` (deterministic tie-break by
    /// ascending id via [`ReputationVector::ranking`]).
    pub fn select(&self, v: &ReputationVector) -> Vec<NodeId> {
        v.top_k(self.max_power_nodes)
    }

    /// Convenience: the [`Prior`] uniform over the selected power nodes.
    pub fn prior(&self, v: &ReputationVector) -> Prior {
        Prior::over_nodes(v.n(), &self.select(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_prior_density() {
        let p = Prior::uniform(4);
        assert!(p.is_uniform());
        for j in 0..4 {
            assert!((p.density(NodeId(j)) - 0.25).abs() < 1e-12);
        }
        assert!((p.to_dense().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_node_prior_density() {
        let p = Prior::over_nodes(5, &[NodeId(1), NodeId(4)]);
        assert_eq!(p.density(NodeId(1)), 0.5);
        assert_eq!(p.density(NodeId(4)), 0.5);
        assert_eq!(p.density(NodeId(0)), 0.0);
        assert!((p.to_dense().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_power_set_falls_back_to_uniform() {
        let p = Prior::over_nodes(3, &[]);
        assert!(p.is_uniform());
    }

    #[test]
    fn duplicate_support_nodes_renormalize() {
        let p = Prior::over_nodes(3, &[NodeId(2), NodeId(2)]);
        assert_eq!(p.density(NodeId(2)), 1.0);
        assert_eq!(p.support_nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn mixing_preserves_total_mass() {
        let p = Prior::over_nodes(4, &[NodeId(0)]);
        let mut v = vec![0.25; 4];
        p.mix_into(&mut v, 0.15);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[0] - (0.85 * 0.25 + 0.15)).abs() < 1e-12);
        assert!((v[1] - 0.85 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_identity() {
        let p = Prior::uniform(3);
        let mut v = vec![0.7, 0.2, 0.1];
        let orig = v.clone();
        p.mix_into(&mut v, 0.0);
        assert_eq!(v, orig);
    }

    #[test]
    fn alpha_one_replaces_with_prior() {
        let p = Prior::over_nodes(3, &[NodeId(1)]);
        let mut v = vec![0.7, 0.2, 0.1];
        p.mix_into(&mut v, 1.0);
        assert_eq!(v, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn selector_picks_top_q() {
        let v = ReputationVector::from_weights(vec![0.1, 0.4, 0.3, 0.2]).unwrap();
        let sel = PowerNodeSelector::new(2);
        assert_eq!(sel.select(&v), vec![NodeId(1), NodeId(2)]);
        let prior = sel.prior(&v);
        assert_eq!(prior.density(NodeId(1)), 0.5);
    }

    #[test]
    fn selector_default_is_one_percent() {
        assert_eq!(PowerNodeSelector::for_network(1000).max_power_nodes, 10);
        assert_eq!(PowerNodeSelector::for_network(30).max_power_nodes, 1);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn mixing_rejects_bad_alpha() {
        Prior::uniform(2).mix_into(&mut [0.5, 0.5], 1.5);
    }
}
