//! Bounded power-law and Zipf samplers.
//!
//! All samplers are deterministic given the caller's RNG and use
//! inverse-CDF sampling over a precomputed cumulative table (discrete) or a
//! closed form (continuous bounded Pareto).

use rand::Rng;

/// Discrete Zipf distribution over ranks `1..=n`: `P(r) ∝ r^(−s)`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Zipf over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Probability mass of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!((1..=self.n()).contains(&r), "rank out of range");
        let hi = self.cumulative[r - 1];
        let lo = if r >= 2 { self.cumulative[r - 2] } else { 0.0 };
        hi - lo
    }

    /// Sample a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.rank_for(u)
    }

    /// Rank whose CDF interval contains `u ∈ [0, 1)`.
    fn rank_for(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(idx) => (idx + 2).min(self.n()),
            Err(idx) => (idx + 1).min(self.n()),
        }
    }

    /// Expected rank value `Σ r·P(r)`.
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &c) in self.cumulative.iter().enumerate() {
            mean += (i as f64 + 1.0) * (c - prev);
            prev = c;
        }
        mean
    }
}

/// The paper's two-segment query-popularity law: Zipf exponent
/// `φ₁ = 0.63` for ranks `1..=break_rank` (default 250) and `φ₂ = 1.24`
/// below, with the segments joined continuously at the break.
#[derive(Clone, Debug)]
pub struct TwoSegmentZipf {
    cumulative: Vec<f64>,
    break_rank: usize,
}

impl TwoSegmentZipf {
    /// Two-segment Zipf over `n` ranks.
    pub fn new(n: usize, break_rank: usize, s1: f64, s2: f64) -> Self {
        assert!(n > 0, "needs at least one rank");
        assert!(break_rank >= 1, "break rank must be >= 1");
        assert!(s1 >= 0.0 && s2 >= 0.0, "exponents must be non-negative");
        // Continuity constant: C·b^(−s2) = b^(−s1) ⇒ C = b^(s2−s1).
        let b = break_rank as f64;
        let c = b.powf(s2 - s1);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            let w = if r <= break_rank {
                (r as f64).powf(-s1)
            } else {
                c * (r as f64).powf(-s2)
            };
            acc += w;
            cumulative.push(acc);
        }
        let total = acc;
        for x in &mut cumulative {
            *x /= total;
        }
        TwoSegmentZipf { cumulative, break_rank }
    }

    /// The paper's Gnutella query model over `n` ranks:
    /// `φ = 0.63` for ranks 1–250, `φ = 1.24` for the tail.
    pub fn gnutella_queries(n: usize) -> Self {
        TwoSegmentZipf::new(n, 250.min(n.max(1)), 0.63, 1.24)
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// The rank where the exponent switches.
    pub fn break_rank(&self) -> usize {
        self.break_rank
    }

    /// Probability mass of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!((1..=self.n()).contains(&r), "rank out of range");
        let hi = self.cumulative[r - 1];
        let lo = if r >= 2 { self.cumulative[r - 2] } else { 0.0 };
        hi - lo
    }

    /// Sample a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(idx) => (idx + 2).min(self.n()),
            Err(idx) => (idx + 1).min(self.n()),
        }
    }
}

/// Continuous bounded Pareto on `[xmin, xmax]` with shape `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundedPareto {
    xmin: f64,
    xmax: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Bounded Pareto with `0 < xmin < xmax` and `alpha > 0`.
    pub fn new(xmin: f64, xmax: f64, alpha: f64) -> Self {
        assert!(xmin > 0.0 && xmax > xmin, "need 0 < xmin < xmax");
        assert!(alpha > 0.0, "shape must be positive");
        BoundedPareto { xmin, xmax, alpha }
    }

    /// Inverse-CDF sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let ratio = (self.xmin / self.xmax).powf(self.alpha);
        // Standard bounded-Pareto inverse CDF.
        self.xmin / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha)
    }

    /// Analytical mean of the bounded Pareto.
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.xmin, self.xmax);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 limit: mean = ln(h/l) · l·h/(h−l)
            (h / l).ln() * l * h / (h - l)
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// Power-law feedback out-degree generator hitting the paper's parameters:
/// degrees in `1..=d_max` with mean ≈ `d_avg`.
///
/// The exponent of the bounded discrete power law is solved by bisection so
/// that the analytic mean matches `d_avg` — this reproduces the paper's
/// "number of feedbacks every node issued is power law distributed" with
/// `d_max = 200` and `d_avg = 20`.
#[derive(Clone, Debug)]
pub struct DegreeSequence {
    zipf: Zipf,
    exponent: f64,
}

impl DegreeSequence {
    /// Build a degree distribution over `1..=d_max` with mean ≈ `d_avg`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ d_avg < d_max`.
    pub fn new(d_avg: usize, d_max: usize) -> Self {
        assert!(d_avg >= 1 && d_avg < d_max, "need 1 <= d_avg < d_max");
        // Bisection on the exponent: the mean of Zipf(1..=d_max, s) is
        // monotonically decreasing in s, from (d_max+1)/2 at s=0 towards 1.
        let target = d_avg as f64;
        let (mut lo, mut hi) = (0.0f64, 8.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let mean = Zipf::new(d_max, mid).mean();
            if mean > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let exponent = 0.5 * (lo + hi);
        DegreeSequence { zipf: Zipf::new(d_max, exponent), exponent }
    }

    /// The solved power-law exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Analytic mean degree of the fitted distribution.
    pub fn mean(&self) -> f64 {
        self.zipf.mean()
    }

    /// Sample one out-degree in `1..=d_max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.zipf.sample(rng)
    }

    /// Sample a full degree sequence for `n` peers, capped by `n − 1`
    /// (a peer cannot rate more peers than exist).
    pub fn sample_sequence<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng).min(n.saturating_sub(1))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(50, 0.8);
        for r in 1..50 {
            assert!(z.pmf(r) >= z.pmf(r + 1), "rank {r}");
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 1..=10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
        assert!((z.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_match_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for r in 1..=5 {
            let emp = counts[r - 1] as f64 / trials as f64;
            assert!((emp - z.pmf(r)).abs() < 0.01, "rank {r}: {emp} vs {}", z.pmf(r));
        }
    }

    #[test]
    fn zipf_sample_covers_range_only() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=7).contains(&r));
        }
    }

    #[test]
    fn two_segment_is_continuous_at_break() {
        let t = TwoSegmentZipf::new(1000, 250, 0.63, 1.24);
        // The pmf ratio across the break should follow the *tail* exponent,
        // not jump: p(250)/p(251) ≈ (251/250)^1.24 ≈ 1.005.
        let ratio = t.pmf(250) / t.pmf(251);
        assert!(ratio > 1.0 && ratio < 1.02, "ratio {ratio}");
    }

    #[test]
    fn two_segment_tail_decays_faster() {
        let t = TwoSegmentZipf::gnutella_queries(2000);
        assert_eq!(t.break_rank(), 250);
        // Head decay (per decade) is slower than tail decay.
        let head_ratio = t.pmf(10) / t.pmf(100); // ~ (10)^0.63
        let tail_ratio = t.pmf(300) / t.pmf(2000); // ~ steeper
        let head_exp = head_ratio.ln() / 10f64.ln();
        let tail_exp = tail_ratio.ln() / (2000.0f64 / 300.0).ln();
        assert!((head_exp - 0.63).abs() < 0.02, "head exponent {head_exp}");
        assert!((tail_exp - 1.24).abs() < 0.05, "tail exponent {tail_exp}");
    }

    #[test]
    fn two_segment_pmf_sums_to_one() {
        let t = TwoSegmentZipf::gnutella_queries(500);
        let total: f64 = (1..=500).map(|r| t.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let p = BoundedPareto::new(2.0, 500.0, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = p.sample(&mut rng);
            assert!((2.0..=500.0 + 1e-9).contains(&x), "x={x}");
        }
    }

    #[test]
    fn bounded_pareto_empirical_mean_matches_analytic() {
        let p = BoundedPareto::new(1.0, 1000.0, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 200_000;
        let sum: f64 = (0..trials).map(|_| p.sample(&mut rng)).sum();
        let emp = sum / trials as f64;
        let ana = p.mean();
        assert!((emp - ana).abs() / ana < 0.05, "emp {emp} vs analytic {ana}");
    }

    #[test]
    fn degree_sequence_hits_paper_parameters() {
        // Table 2: d_max = 200, d_avg = 20.
        let d = DegreeSequence::new(20, 200);
        assert!((d.mean() - 20.0).abs() < 0.1, "analytic mean {}", d.mean());
        let mut rng = StdRng::seed_from_u64(5);
        let seq = d.sample_sequence(20_000, &mut rng);
        let emp = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        assert!((emp - 20.0).abs() < 1.0, "empirical mean {emp}");
        assert!(seq.iter().all(|&x| (1..=200).contains(&x)));
        assert!(d.exponent() > 0.0 && d.exponent() < 3.0);
    }

    #[test]
    fn degree_sequence_caps_by_network_size() {
        let d = DegreeSequence::new(20, 200);
        let mut rng = StdRng::seed_from_u64(6);
        let seq = d.sample_sequence(10, &mut rng);
        assert!(seq.iter().all(|&x| x <= 9));
    }

    #[test]
    #[should_panic(expected = "d_avg < d_max")]
    fn degree_sequence_rejects_bad_params() {
        let _ = DegreeSequence::new(200, 200);
    }
}
