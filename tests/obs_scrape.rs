//! Scrape the observability surface of a live service **mid-epoch under
//! load**: background epochs every few milliseconds, writer/reader load
//! from client threads, and two concurrent scrape paths — the `metrics`
//! verb on the query port and the HTTP listener `serve_metrics_on`
//! drives. Both must return a parseable Prometheus exposition carrying
//! the full metric set while epochs are in flight.

use gossiptrust::core::id::NodeId;
use gossiptrust::serve::server::{serve_metrics_on, serve_on};
use gossiptrust::serve::service::{ReputationService, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

const N: usize = 120;

/// Every metric name the obs subsystem promises to expose, whatever the
/// service was doing when the scrape landed.
const REQUIRED: &[&str] = &[
    "gt_request_latency_ns",
    "gt_query_latency_ns",
    "gt_ingest_latency_ns",
    "gt_epoch_fold_ns",
    "gt_epoch_aggregate_ns",
    "gt_epoch_publish_ns",
    "gt_epoch_total_ns",
    "gt_wal_fsync_ns",
    "gt_gossip_step_ns",
    "gt_gossip_bytes_streamed_total",
    "gt_epochs_attempted_total",
    "gt_epochs_published_total",
    "gt_queries_served_total",
    "gt_requests_shed_total",
    "gt_ingest_retries_total",
    "gt_conns_rejected_total",
    "gt_chaos_frames_dropped_total",
    "gt_chaos_epochs_panicked_total",
    "gt_trace_events_dropped_total",
];

fn assert_exposition_complete(text: &str, via: &str) {
    for name in REQUIRED {
        assert!(text.contains(name), "{via} exposition is missing {name}:\n{text}");
    }
    // Histogram sanity: cumulative bucket lines, +Inf terminator, and a
    // sum/count pair for the query histogram that served the load.
    assert!(
        text.contains("gt_query_latency_ns_bucket{le=\"+Inf\"}"),
        "{via}: query histogram has no +Inf bucket:\n{text}"
    );
    assert!(text.contains("gt_query_latency_ns_count"), "{via}: no count line");
    assert!(text.contains("gt_query_latency_ns_sum"), "{via}: no sum line");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn scraping_mid_epoch_under_load_returns_the_full_surface() {
    // Epochs every 5 ms: scrapes land while fold/aggregate/publish spans
    // are genuinely in flight, not between idle epochs.
    let config =
        ServiceConfig { epoch_interval: Some(Duration::from_millis(5)), ..ServiceConfig::new(N) };
    let service = ReputationService::start(config);
    let handle = service.handle();
    for i in 0..N {
        handle
            .record(NodeId::from_index(i), NodeId::from_index((i + 1) % N), 2.0)
            .expect("in range");
    }

    // Client load from plain threads for the whole duration of the test.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let h = service.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let peer = NodeId::from_index(i % N);
                    let _ = h.get_score(peer);
                    let _ = h.record(peer, NodeId::from_index((i + 3) % N), 1.0);
                    i += 1;
                }
            })
        })
        .collect();

    let query_listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
    let query_addr = query_listener.local_addr().expect("addr");
    let scrape_listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
    let scrape_addr = scrape_listener.local_addr().expect("addr");
    let server = tokio::spawn(serve_on(service.handle(), query_listener));
    let scraper = tokio::spawn(serve_metrics_on(service.handle(), scrape_listener));

    // Let a few epochs and a burst of load land first.
    tokio::time::sleep(Duration::from_millis(60)).await;

    // --- Scrape path 1: the `metrics` verb on the query port -------------
    let mut stream = TcpStream::connect(query_addr).await.expect("connect");
    stream.write_all(b"{\"op\":\"metrics\"}\n").await.expect("write");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte).await.expect("read");
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    let obj = gossiptrust::serve::json::parse_flat(std::str::from_utf8(&line).expect("utf-8"))
        .expect("metrics reply parses");
    let text = gossiptrust::serve::json::get_str(&obj, "metrics").expect("metrics field");
    assert_exposition_complete(text, "metrics verb");

    // --- Scrape path 2: several concurrent HTTP scrapes mid-epoch --------
    let scrapes: Vec<_> = (0..4)
        .map(|_| {
            tokio::spawn(async move {
                let mut stream = TcpStream::connect(scrape_addr).await.expect("connect");
                stream
                    .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                    .await
                    .expect("write");
                let mut raw = Vec::new();
                stream.read_to_end(&mut raw).await.expect("read");
                String::from_utf8(raw).expect("utf-8")
            })
        })
        .collect();
    for task in scrapes {
        let response = task.await.expect("scrape task");
        let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "status: {head}");
        assert_exposition_complete(body, "http scrape");
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker thread");
    }

    // The load must actually be visible in what was scraped.
    let final_text = service.handle().metrics_text();
    let report = service.handle().stats_report();
    assert!(report.epochs_published >= 2, "background epochs ran: {report:?}");
    assert!(final_text.contains("gt_epoch_fold_ns_count"), "fold was timed");
    assert!(!final_text.contains("gt_queries_served_total 0\n"), "queries were counted");

    server.abort();
    scraper.abort();
    service.shutdown();
}
