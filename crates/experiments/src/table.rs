//! Plain-text table rendering for experiment output.

/// A simple fixed-column text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = TextTable::new(vec!["a", "longheader"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("1    "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
