//! Convergence detectors for the two nested loops of GossipTrust.
//!
//! * [`RatioTracker`] — the *inner* (gossip) loop: a node watches its local
//!   ratio `β = x/w` and stops when it has stabilized within `ε`
//!   (Algorithm 1, line 14). The paper's `∞` case (`w = 0`, no consensus
//!   mass received yet) is modeled explicitly as "undefined".
//! * [`VectorConvergence`] — the *outer* (aggregation) loop: successive
//!   global vectors `V(t-1), V(t)` are compared against `δ`
//!   (Algorithm 2, line 25).

use crate::vector::ReputationVector;
use serde::{Deserialize, Serialize};

/// Tracks one gossiped ratio `β_i(k) = x_i(k)/w_i(k)` across gossip steps and
/// decides local convergence per Algorithm 1.
///
/// The detector augments the paper's single-step test
/// `|x/w − u| ≤ ε` with two practical guards, documented in DESIGN.md:
///
/// 1. the ratio is *undefined* while `w = 0`, and an undefined ratio never
///    counts as converged (the paper's Table 1 shows `β₃(1) = ∞`);
/// 2. the below-`ε` condition must hold for `patience` consecutive steps,
///    because early in the protocol the consensus weight `w` is still
///    spreading and the ratio can transiently plateau.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatioTracker {
    epsilon: f64,
    patience: usize,
    streak: usize,
    last: Option<f64>,
}

impl RatioTracker {
    /// New tracker with threshold `ε` and the given consecutive-step patience
    /// (≥ 1; the paper's literal reading is `patience = 1`).
    pub fn new(epsilon: f64, patience: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(patience >= 1, "patience must be at least 1");
        RatioTracker { epsilon, patience, streak: 0, last: None }
    }

    /// Observe the pair `(x, w)` after a gossip step. Returns `true` when the
    /// tracker considers the ratio converged as of this observation.
    pub fn observe(&mut self, x: f64, w: f64) -> bool {
        let ratio = if w > 0.0 { Some(x / w) } else { None };
        match (self.last, ratio) {
            (Some(prev), Some(cur)) if (cur - prev).abs() <= self.epsilon => {
                self.streak += 1;
            }
            _ => {
                self.streak = 0;
            }
        }
        self.last = ratio;
        self.converged()
    }

    /// Whether the last [`observe`](Self::observe) completed the streak.
    pub fn converged(&self) -> bool {
        self.streak >= self.patience
    }

    /// The most recent defined ratio, if any.
    pub fn current(&self) -> Option<f64> {
        self.last
    }

    /// Reset for a fresh aggregation cycle.
    pub fn reset(&mut self) {
        self.streak = 0;
        self.last = None;
    }
}

/// Outer-loop convergence test: `|V(t) − V(t−1)| < δ`, measured as the
/// average relative error (matching [`ReputationVector::avg_relative_error`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VectorConvergence {
    delta: f64,
    previous: Option<ReputationVector>,
    last_residual: Option<f64>,
}

impl VectorConvergence {
    /// New test with aggregation threshold `δ > 0`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        VectorConvergence { delta, previous: None, last_residual: None }
    }

    /// Observe the cycle-`t` vector; returns `true` once the distance to the
    /// cycle-`t−1` vector drops below `δ`. The first observation never
    /// converges (there is nothing to compare against).
    pub fn observe(&mut self, v: &ReputationVector) -> bool {
        let converged = match &self.previous {
            Some(prev) => {
                let residual = prev
                    .avg_relative_error(v)
                    .expect("cycle vectors share the network size");
                self.last_residual = Some(residual);
                residual < self.delta
            }
            None => false,
        };
        self.previous = Some(v.clone());
        converged
    }

    /// The residual computed by the most recent comparison.
    pub fn last_residual(&self) -> Option<f64> {
        self.last_residual
    }

    /// Reset all history.
    pub fn reset(&mut self) {
        self.previous = None;
        self.last_residual = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefined_ratio_never_converges() {
        let mut t = RatioTracker::new(1e-3, 1);
        assert!(!t.observe(0.1, 0.0));
        assert!(!t.observe(0.1, 0.0));
        assert_eq!(t.current(), None);
    }

    #[test]
    fn stable_ratio_converges_after_patience() {
        let mut t = RatioTracker::new(1e-3, 2);
        assert!(!t.observe(0.2, 1.0)); // first defined value, no previous
        assert!(!t.observe(0.2, 1.0)); // streak = 1
        assert!(t.observe(0.2, 1.0)); // streak = 2 → converged
    }

    #[test]
    fn paper_patience_of_one_matches_single_step_test() {
        let mut t = RatioTracker::new(1e-3, 1);
        assert!(!t.observe(0.5, 1.0));
        assert!(t.observe(0.5001, 1.0)); // |Δ| = 1e-4 ≤ 1e-3
    }

    #[test]
    fn jump_resets_streak() {
        let mut t = RatioTracker::new(1e-3, 2);
        t.observe(0.2, 1.0);
        t.observe(0.2, 1.0);
        assert!(!t.observe(0.9, 1.0)); // jump breaks the streak
        assert!(!t.observe(0.9, 1.0));
        assert!(t.observe(0.9, 1.0));
    }

    #[test]
    fn losing_the_weight_resets() {
        // Halving below float precision can in principle zero a weight; the
        // tracker must treat a w=0 observation as undefined again.
        let mut t = RatioTracker::new(1e-3, 1);
        t.observe(0.2, 1.0);
        assert!(!t.observe(0.1, 0.0));
        assert_eq!(t.current(), None);
    }

    #[test]
    fn tracker_reset_clears_state() {
        let mut t = RatioTracker::new(1e-3, 1);
        t.observe(0.2, 1.0);
        t.observe(0.2, 1.0);
        assert!(t.converged());
        t.reset();
        assert!(!t.converged());
        assert_eq!(t.current(), None);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn tracker_rejects_nonpositive_epsilon() {
        let _ = RatioTracker::new(0.0, 1);
    }

    #[test]
    fn vector_convergence_needs_two_observations() {
        let mut c = VectorConvergence::new(1e-3);
        let v = ReputationVector::uniform(4);
        assert!(!c.observe(&v));
        assert!(c.observe(&v)); // identical vector → zero residual
        assert_eq!(c.last_residual(), Some(0.0));
    }

    #[test]
    fn vector_convergence_rejects_large_changes() {
        let mut c = VectorConvergence::new(1e-3);
        let a = ReputationVector::from_weights(vec![0.5, 0.5]).unwrap();
        let b = ReputationVector::from_weights(vec![0.9, 0.1]).unwrap();
        assert!(!c.observe(&a));
        assert!(!c.observe(&b));
        assert!(c.last_residual().unwrap() > 1e-3);
    }

    #[test]
    fn vector_reset_forgets_history() {
        let mut c = VectorConvergence::new(1e-3);
        let v = ReputationVector::uniform(2);
        c.observe(&v);
        c.reset();
        assert!(!c.observe(&v), "first post-reset observation cannot converge");
    }
}
