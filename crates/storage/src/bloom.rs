//! A from-scratch Bloom filter.
//!
//! Uses the standard Kirsch–Mitzenmacher double-hashing construction: two
//! independent 64-bit hashes `h1`, `h2` derived from one splitmix pass, and
//! probe positions `h1 + i·h2 (mod m)` for `i = 0..k`.

/// Splitmix64 mixer (independent constant from the DHT's).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A fixed-size Bloom filter over `u64` keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    insertions: usize,
}

impl BloomFilter {
    /// Filter with `m` bits and `k` hash probes.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k == 0`.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0, "need at least one bit");
        assert!(k > 0, "need at least one probe");
        BloomFilter { bits: vec![0u64; m.div_ceil(64)], m, k, insertions: 0 }
    }

    /// Filter sized for `n` expected items at false-positive rate `p`,
    /// using the optimal `m = −n·ln p / (ln 2)²` and `k = (m/n)·ln 2`.
    pub fn with_rate(n: usize, p: f64) -> Self {
        assert!(n > 0, "need at least one expected item");
        assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n as f64) * p.ln() / (ln2 * ln2)).ceil().max(64.0) as usize;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as u32;
        BloomFilter::new(m, k)
    }

    /// Number of bits `m`.
    pub fn bits(&self) -> usize {
        self.m
    }

    /// Number of probes `k`.
    pub fn probes(&self) -> u32 {
        self.k
    }

    /// Items inserted so far.
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Storage footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    #[inline]
    fn probe_positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h = mix(key ^ 0x6A09E667F3BCC909);
        let h1 = h as u32 as u64;
        let h2 = (h >> 32) | 1; // odd, so it cycles the whole ring
        let m = self.m as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert `key`.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<usize> = self.probe_positions(key).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.insertions += 1;
    }

    /// Membership probe: `false` is definite, `true` may be a false
    /// positive.
    pub fn contains(&self, key: u64) -> bool {
        self.probe_positions(key)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Expected false-positive rate at the current load:
    /// `(1 − e^(−k·n/m))^k`.
    pub fn expected_fp_rate(&self) -> f64 {
        let exponent = -(self.k as f64) * (self.insertions as f64) / (self.m as f64);
        (1.0 - exponent.exp()).powi(self.k as i32)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.insertions = 0;
    }

    /// Union with another filter of identical geometry.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.m, other.m, "bit-width mismatch");
        assert_eq!(self.k, other.k, "probe-count mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.insertions += other.insertions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_ever() {
        let mut f = BloomFilter::with_rate(1000, 0.01);
        for key in 0..1000u64 {
            f.insert(key);
        }
        for key in 0..1000u64 {
            assert!(f.contains(key), "false negative for {key}");
        }
    }

    #[test]
    fn false_positive_rate_near_design_point() {
        let mut f = BloomFilter::with_rate(2000, 0.01);
        for key in 0..2000u64 {
            f.insert(key);
        }
        let trials = 100_000u64;
        let fps = (10_000..10_000 + trials).filter(|&k| f.contains(k)).count();
        let rate = fps as f64 / trials as f64;
        assert!(rate < 0.03, "fp rate {rate} far above design 0.01");
        // And the analytic estimate agrees with the design point.
        assert!((f.expected_fp_rate() - 0.01).abs() < 0.01);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4);
        for key in 0..1000u64 {
            assert!(!f.contains(key));
        }
        assert_eq!(f.expected_fp_rate(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(256, 3);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.insertions(), 0);
    }

    #[test]
    fn union_merges_membership() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(1);
        b.insert(2);
        a.union(&b);
        assert!(a.contains(1) && a.contains(2));
        assert_eq!(a.insertions(), 2);
    }

    #[test]
    #[should_panic(expected = "bit-width mismatch")]
    fn union_rejects_geometry_mismatch() {
        let mut a = BloomFilter::new(512, 4);
        let b = BloomFilter::new(256, 4);
        a.union(&b);
    }

    #[test]
    fn with_rate_sizes_sensibly() {
        let f = BloomFilter::with_rate(1000, 0.01);
        // Optimal m ≈ 9.6 bits/item, k ≈ 7.
        assert!((9_000..11_000).contains(&f.bits()), "m = {}", f.bits());
        assert!((6..=8).contains(&f.probes()), "k = {}", f.probes());
    }

    #[test]
    fn byte_size_is_much_smaller_than_exact_table() {
        // 1000 peers at 1% fp: ~1.2 KB vs 12 KB of (u32, f64) pairs.
        let f = BloomFilter::with_rate(1000, 0.01);
        assert!(f.byte_size() < 1000 * 12 / 5);
    }
}
