//! SHA-256 / HMAC / envelope throughput (the per-push signing cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_crypto::{hmac_sha256, sha256, Pkg, SignedEnvelope};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for &len in &[64usize, 1_024, 16_384] {
        let data = vec![0xABu8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(sha256(black_box(&data))));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    // A push for n = 1000 carries ~16 KB.
    for &len in &[256usize, 16_384] {
        let data = vec![0x5Au8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(hmac_sha256(b"key", black_box(&data))));
        });
    }
    group.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let pkg = Pkg::from_seed(1);
    let key = pkg.issue(7);
    let verifier = pkg.verifier();
    let payload = vec![0x11u8; 16_000];
    let mut group = c.benchmark_group("envelope");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("seal", |b| {
        b.iter(|| black_box(key.seal(black_box(&payload))));
    });
    let env = key.seal(&payload);
    let encoded = env.encode();
    group.bench_function("decode_verify", |b| {
        b.iter(|| {
            let e = SignedEnvelope::decode(black_box(&encoded)).unwrap();
            black_box(verifier.open(&e))
        });
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(name = benches; config = short(); targets = bench_sha256, bench_hmac, bench_envelope);
criterion_main!(benches);
