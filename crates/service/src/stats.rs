//! Service-level counters: epochs, degradations, queries, gossip totals.
//!
//! The gossip totals are built on [`GossipStats::diff`]: the epoch loop
//! captures the persistent engine's monotonic counters before each epoch,
//! diffs them after, and absorbs exactly that epoch's activity here — so
//! the service totals stay correct even though the engine is reused and
//! its own counters never reset.

use gossiptrust_gossip::stats::GossipStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free service counter block.
///
/// All counters are monotonic; readers may observe a set of counters that
/// straddles an in-flight epoch (e.g. `epochs_attempted` already bumped,
/// `epochs_published` not yet), which is fine for monitoring — only the
/// `SnapshotCell` carries consistency guarantees.
#[derive(Debug, Default)]
pub struct ServiceStats {
    epochs_attempted: AtomicU64,
    epochs_published: AtomicU64,
    /// Epochs that failed or did not converge and therefore left the
    /// previous snapshot serving — the graceful-degradation counter.
    epochs_degraded: AtomicU64,
    /// Epochs whose body panicked and was contained by the watchdog's
    /// `catch_unwind` (the engine is rebuilt, the prior snapshot serves).
    epochs_panicked: AtomicU64,
    /// Epochs that completed but blew the `GT_EPOCH_DEADLINE_MS` budget
    /// and were abandoned (result discarded, prior snapshot kept).
    epochs_overrun: AtomicU64,
    queries_served: AtomicU64,
    /// Ingest requests shed by the bounded-queue admission gate
    /// (`GT_INGEST_QUEUE`) — the retriable `overloaded` error.
    requests_shed: AtomicU64,
    /// Connections refused at accept because `GT_CONN_LIMIT` was reached.
    conns_rejected: AtomicU64,
    /// Connections closed by the per-line read deadline
    /// (`GT_READ_TIMEOUT_MS`) — slow-loris reaping.
    conns_timed_out: AtomicU64,
    /// Feedback records replayed from the WAL at startup.
    wal_replayed_records: AtomicU64,
    /// Feedback records appended to the WAL since startup.
    wal_appended_records: AtomicU64,
    gossip_steps: AtomicU64,
    gossip_messages_sent: AtomicU64,
    gossip_messages_dropped: AtomicU64,
    gossip_triplets_sent: AtomicU64,
    gossip_bytes_streamed: AtomicU64,
    /// Wall time of the most recent epoch, in microseconds.
    last_epoch_wall_us: AtomicU64,
}

/// A plain, copyable view of [`ServiceStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsReport {
    /// Epochs the loop started.
    pub epochs_attempted: u64,
    /// Epochs that published a new snapshot.
    pub epochs_published: u64,
    /// Epochs that degraded (failed/non-converged; previous snapshot kept).
    pub epochs_degraded: u64,
    /// Epochs whose body panicked (contained; engine rebuilt).
    pub epochs_panicked: u64,
    /// Epochs abandoned for overrunning the epoch deadline.
    pub epochs_overrun: u64,
    /// Queries answered across all front-ends.
    pub queries_served: u64,
    /// Ingest requests shed by the bounded-queue admission gate.
    pub requests_shed: u64,
    /// Connections refused at the accept gate (`GT_CONN_LIMIT`).
    pub conns_rejected: u64,
    /// Connections reaped by the read deadline (`GT_READ_TIMEOUT_MS`).
    pub conns_timed_out: u64,
    /// Feedback records replayed from the WAL at startup.
    pub wal_replayed_records: u64,
    /// Feedback records appended to the WAL since startup.
    pub wal_appended_records: u64,
    /// Total gossip activity across all epochs (sum of per-epoch diffs).
    pub gossip: GossipStats,
    /// Wall time of the most recent epoch in milliseconds.
    pub last_epoch_wall_ms: f64,
}

impl ServiceStats {
    /// Fresh, all-zero counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that an epoch is starting.
    pub fn note_epoch_started(&self) {
        self.epochs_attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a finished epoch: `published` says whether a new snapshot went
    /// live; `delta` is that epoch's gossip activity (an engine counter
    /// diff), which is absorbed into the service totals either way — a
    /// degraded epoch still burned the messages.
    pub fn note_epoch_finished(&self, published: bool, delta: &GossipStats, wall_ms: f64) {
        if published {
            self.epochs_published.fetch_add(1, Ordering::Relaxed);
        } else {
            self.epochs_degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.gossip_steps.fetch_add(delta.steps, Ordering::Relaxed);
        self.gossip_messages_sent
            .fetch_add(delta.messages_sent, Ordering::Relaxed);
        self.gossip_messages_dropped
            .fetch_add(delta.messages_dropped, Ordering::Relaxed);
        self.gossip_triplets_sent
            .fetch_add(delta.triplets_sent, Ordering::Relaxed);
        self.gossip_bytes_streamed
            .fetch_add(delta.bytes_streamed, Ordering::Relaxed);
        self.last_epoch_wall_us
            .store((wall_ms * 1_000.0) as u64, Ordering::Relaxed);
    }

    /// Note an epoch whose body panicked and was contained. Counts as its
    /// own failure class (not `epochs_degraded`): a panic means the engine
    /// was rebuilt, not merely that convergence was missed.
    pub fn note_epoch_panicked(&self, wall_ms: f64) {
        self.epochs_panicked.fetch_add(1, Ordering::Relaxed);
        self.last_epoch_wall_us
            .store((wall_ms * 1_000.0) as u64, Ordering::Relaxed);
    }

    /// Note an epoch abandoned for overrunning its deadline. The gossip
    /// `delta` is still absorbed — the work was burned even though the
    /// result was discarded.
    pub fn note_epoch_overrun(&self, delta: &GossipStats, wall_ms: f64) {
        self.epochs_overrun.fetch_add(1, Ordering::Relaxed);
        self.gossip_steps.fetch_add(delta.steps, Ordering::Relaxed);
        self.gossip_messages_sent
            .fetch_add(delta.messages_sent, Ordering::Relaxed);
        self.gossip_messages_dropped
            .fetch_add(delta.messages_dropped, Ordering::Relaxed);
        self.gossip_triplets_sent
            .fetch_add(delta.triplets_sent, Ordering::Relaxed);
        self.gossip_bytes_streamed
            .fetch_add(delta.bytes_streamed, Ordering::Relaxed);
        self.last_epoch_wall_us
            .store((wall_ms * 1_000.0) as u64, Ordering::Relaxed);
    }

    /// Note one answered query.
    pub fn note_query(&self) {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Note one ingest request shed by the admission gate.
    pub fn note_request_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Note one connection refused at the accept gate.
    pub fn note_conn_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Note one connection reaped by the read deadline.
    pub fn note_conn_timed_out(&self) {
        self.conns_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Note `records` feedback events replayed from the WAL at startup.
    pub fn note_wal_replayed(&self, records: u64) {
        self.wal_replayed_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Note `records` feedback events appended to the WAL.
    pub fn note_wal_appended(&self, records: u64) {
        self.wal_appended_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Degraded-epoch count (the graceful-degradation counter).
    pub fn epochs_degraded(&self) -> u64 {
        self.epochs_degraded.load(Ordering::Relaxed)
    }

    /// Epochs abandoned by the watchdog, either failure class
    /// (panicked + overrun).
    pub fn epochs_abandoned(&self) -> u64 {
        self.epochs_panicked.load(Ordering::Relaxed) + self.epochs_overrun.load(Ordering::Relaxed)
    }

    /// Ingest requests shed so far.
    pub fn requests_shed(&self) -> u64 {
        self.requests_shed.load(Ordering::Relaxed)
    }

    /// Published-epoch count.
    pub fn epochs_published(&self) -> u64 {
        self.epochs_published.load(Ordering::Relaxed)
    }

    /// Queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Copy the counters into a plain report.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            epochs_attempted: self.epochs_attempted.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            epochs_degraded: self.epochs_degraded.load(Ordering::Relaxed),
            epochs_panicked: self.epochs_panicked.load(Ordering::Relaxed),
            epochs_overrun: self.epochs_overrun.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            conns_timed_out: self.conns_timed_out.load(Ordering::Relaxed),
            wal_replayed_records: self.wal_replayed_records.load(Ordering::Relaxed),
            wal_appended_records: self.wal_appended_records.load(Ordering::Relaxed),
            gossip: GossipStats {
                steps: self.gossip_steps.load(Ordering::Relaxed),
                messages_sent: self.gossip_messages_sent.load(Ordering::Relaxed),
                messages_dropped: self.gossip_messages_dropped.load(Ordering::Relaxed),
                triplets_sent: self.gossip_triplets_sent.load(Ordering::Relaxed),
                bytes_streamed: self.gossip_bytes_streamed.load(Ordering::Relaxed),
            },
            last_epoch_wall_ms: self.last_epoch_wall_us.load(Ordering::Relaxed) as f64 / 1_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_accounting_splits_published_and_degraded() {
        let stats = ServiceStats::new();
        let delta = GossipStats {
            steps: 10,
            messages_sent: 20,
            messages_dropped: 1,
            triplets_sent: 200,
            bytes_streamed: 4_000,
        };
        stats.note_epoch_started();
        stats.note_epoch_finished(true, &delta, 1.5);
        stats.note_epoch_started();
        stats.note_epoch_finished(false, &delta, 2.5);
        let r = stats.report();
        assert_eq!(r.epochs_attempted, 2);
        assert_eq!(r.epochs_published, 1);
        assert_eq!(r.epochs_degraded, 1);
        // Both epochs' gossip activity is absorbed, published or not.
        assert_eq!(r.gossip.steps, 20);
        assert_eq!(r.gossip.messages_sent, 40);
        // The kernel-traffic estimate rides along (and the per-step mean
        // readout with it: 8000 bytes over 20 steps).
        assert_eq!(r.gossip.bytes_streamed, 8_000);
        assert!((r.gossip.bytes_streamed_per_step() - 400.0).abs() < 1e-12);
        assert!((r.last_epoch_wall_ms - 2.5).abs() < 1e-3);
    }

    #[test]
    fn robustness_counters_accumulate_independently() {
        let stats = ServiceStats::new();
        let delta = GossipStats { steps: 5, messages_sent: 10, ..GossipStats::default() };
        stats.note_epoch_started();
        stats.note_epoch_panicked(3.0);
        stats.note_epoch_started();
        stats.note_epoch_overrun(&delta, 9.0);
        stats.note_request_shed();
        stats.note_request_shed();
        stats.note_conn_rejected();
        stats.note_conn_timed_out();
        stats.note_wal_replayed(40);
        stats.note_wal_appended(3);
        let r = stats.report();
        assert_eq!(r.epochs_attempted, 2);
        assert_eq!(r.epochs_panicked, 1);
        assert_eq!(r.epochs_overrun, 1);
        assert_eq!(stats.epochs_abandoned(), 2);
        // Neither failure class double-counts as published or degraded.
        assert_eq!(r.epochs_published, 0);
        assert_eq!(r.epochs_degraded, 0);
        assert_eq!(r.requests_shed, 2);
        assert_eq!(stats.requests_shed(), 2);
        assert_eq!(r.conns_rejected, 1);
        assert_eq!(r.conns_timed_out, 1);
        assert_eq!(r.wal_replayed_records, 40);
        assert_eq!(r.wal_appended_records, 3);
        // Overrun epochs still absorb their gossip burn.
        assert_eq!(r.gossip.steps, 5);
        assert!((r.last_epoch_wall_ms - 9.0).abs() < 1e-3);
    }

    #[test]
    fn query_counter_accumulates() {
        let stats = ServiceStats::new();
        for _ in 0..7 {
            stats.note_query();
        }
        assert_eq!(stats.queries_served(), 7);
        assert_eq!(stats.report().queries_served, 7);
    }
}
