//! Exact centralized power iteration (Eq. 2) — the ground-truth oracle.
//!
//! `V(t+1) = (1-α)·Sᵀ·V(t) + α·P` iterated until the average relative error
//! between successive vectors drops below `δ`. This is what a trusted central
//! authority *could* compute; every distributed result in the workspace is
//! judged against it. The paper proves the cycle count is bounded by
//! `d ≤ ⌈log_b δ⌉` with `b = λ₂/λ₁` ([`cycle_bound`]).

use crate::error::CoreError;
use crate::matrix::TrustMatrix;
use crate::params::Params;
use crate::power_nodes::Prior;
use crate::vector::ReputationVector;

/// Result of a power-iteration solve.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOutcome {
    /// The converged (or best-effort) global reputation vector.
    pub vector: ReputationVector,
    /// Number of aggregation cycles `d` actually performed.
    pub cycles: usize,
    /// Whether the `δ` test was met within the cycle budget.
    pub converged: bool,
    /// The final average relative error between the last two iterates.
    pub residual: f64,
    /// Residual history, one entry per cycle (useful for estimating the
    /// convergence rate `b = λ₂/λ₁` empirically).
    pub residual_history: Vec<f64>,
}

impl SolveOutcome {
    /// Empirical estimate of the geometric convergence rate `b ≈ λ₂/λ₁`,
    /// taken as the mean ratio of successive residuals over the final
    /// cycles (ignoring the first cycle, which reflects the initial guess).
    ///
    /// Returns `None` when fewer than three cycles were run.
    pub fn convergence_rate_estimate(&self) -> Option<f64> {
        if self.residual_history.len() < 3 {
            return None;
        }
        let h = &self.residual_history[1..];
        let ratios: Vec<f64> = h
            .windows(2)
            .filter(|w| w[0] > 0.0 && w[1] > 0.0)
            .map(|w| w[1] / w[0])
            .collect();
        if ratios.is_empty() {
            return None;
        }
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// Centralized iterative solver for the global reputation vector.
#[derive(Clone, Debug)]
pub struct PowerIteration {
    params: Params,
}

impl PowerIteration {
    /// Solver using `params.delta`, `params.alpha` and `params.max_cycles`.
    pub fn new(params: Params) -> Self {
        PowerIteration { params }
    }

    /// Access the solver parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Run Eq. 2 from `V(0) = uniform` until convergence.
    ///
    /// # Panics
    /// Panics if the matrix size differs from the prior size.
    pub fn solve(&self, matrix: &TrustMatrix, prior: &Prior) -> SolveOutcome {
        self.solve_from(matrix, prior, &ReputationVector::uniform(matrix.n()))
    }

    /// Run Eq. 2 starting from a caller-supplied `V(0)` (used by reputation
    /// *updating*, which warm-starts from the previous round's scores).
    pub fn solve_from(
        &self,
        matrix: &TrustMatrix,
        prior: &Prior,
        start: &ReputationVector,
    ) -> SolveOutcome {
        assert_eq!(matrix.n(), prior.n(), "matrix and prior must agree on n");
        assert_eq!(matrix.n(), start.n(), "matrix and start vector must agree on n");
        let n = matrix.n();
        let mut current = start.clone();
        let mut next = vec![0.0; n];
        let mut history = Vec::new();
        for cycle in 1..=self.params.max_cycles {
            matrix
                .transpose_mul(current.values(), &mut next)
                .expect("dimensions checked above");
            prior.mix_into(&mut next, self.params.alpha);
            let next_vec = ReputationVector::from_weights(next.clone())
                .expect("stochastic product of non-negative inputs stays valid");
            let residual = current.avg_relative_error(&next_vec).expect("same dimension");
            history.push(residual);
            current = next_vec;
            if residual < self.params.delta {
                return SolveOutcome {
                    vector: current,
                    cycles: cycle,
                    converged: true,
                    residual,
                    residual_history: history,
                };
            }
        }
        let residual = history.last().copied().unwrap_or(f64::INFINITY);
        SolveOutcome {
            vector: current,
            cycles: self.params.max_cycles,
            converged: false,
            residual,
            residual_history: history,
        }
    }

    /// Fallible variant of [`solve`](Self::solve) that returns
    /// [`CoreError::NoConvergence`] instead of a best-effort vector.
    pub fn try_solve(
        &self,
        matrix: &TrustMatrix,
        prior: &Prior,
    ) -> Result<SolveOutcome, CoreError> {
        let outcome = self.solve(matrix, prior);
        if outcome.converged {
            Ok(outcome)
        } else {
            Err(CoreError::NoConvergence { iterations: outcome.cycles })
        }
    }
}

/// The paper's cycle bound `d ≤ ⌈log_b δ⌉` for convergence rate
/// `b = λ₂/λ₁ ∈ (0, 1)` and threshold `δ ∈ (0, 1)`.
///
/// Returns `None` for out-of-domain inputs.
pub fn cycle_bound(delta: f64, b: f64) -> Option<usize> {
    let in_domain = 0.0 < delta && delta < 1.0 && 0.0 < b && b < 1.0;
    if !in_domain {
        return None;
    }
    // log_b δ = ln δ / ln b; both logs are negative, so the ratio is positive.
    Some((delta.ln() / b.ln()).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use crate::matrix::TrustMatrixBuilder;

    fn ring_matrix(n: usize) -> TrustMatrix {
        // i trusts only i+1 (mod n): the stationary vector is uniform.
        let mut b = TrustMatrixBuilder::new(n);
        for i in 0..n {
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        }
        b.build()
    }

    fn star_matrix(n: usize) -> TrustMatrix {
        // Everyone trusts node 0; node 0 trusts node 1.
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 1.0);
        }
        b.record(NodeId(0), NodeId(1), 1.0);
        b.build()
    }

    #[test]
    fn ring_converges_to_uniform() {
        let m = ring_matrix(6);
        let solver = PowerIteration::new(Params::for_network(6).with_alpha(0.0));
        let out = solver.solve(&m, &Prior::uniform(6));
        assert!(out.converged);
        for &v in out.vector.values() {
            assert!((v - 1.0 / 6.0).abs() < 1e-6, "got {v}");
        }
    }

    #[test]
    fn star_ranks_hub_first() {
        let m = star_matrix(10);
        let solver = PowerIteration::new(Params::for_network(10));
        let out = solver.solve(&m, &Prior::uniform(10));
        assert!(out.converged);
        assert_eq!(out.vector.ranking()[0], NodeId(0));
        assert_eq!(out.vector.ranking()[1], NodeId(1));
    }

    #[test]
    fn solution_is_fixed_point() {
        // Verify V* ≈ (1-α)·SᵀV* + α·P at convergence.
        let m = star_matrix(8);
        let params = Params::for_network(8).with_delta(1e-10);
        let solver = PowerIteration::new(params.clone());
        let prior = Prior::uniform(8);
        let out = solver.solve(&m, &prior);
        assert!(out.converged);
        let mut next = vec![0.0; 8];
        m.transpose_mul(out.vector.values(), &mut next).unwrap();
        prior.mix_into(&mut next, params.alpha);
        for (a, b) in out.vector.values().iter().zip(&next) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_start_from_solution_converges_immediately() {
        let m = star_matrix(8);
        let solver = PowerIteration::new(Params::for_network(8).with_delta(1e-8));
        let prior = Prior::uniform(8);
        let cold = solver.solve(&m, &prior);
        let warm = solver.solve_from(&m, &prior, &cold.vector);
        assert!(warm.cycles <= 2, "warm start took {} cycles", warm.cycles);
    }

    #[test]
    fn tighter_delta_takes_more_cycles() {
        let m = star_matrix(30);
        let loose = PowerIteration::new(Params::for_network(30).with_delta(1e-2))
            .solve(&m, &Prior::uniform(30));
        let tight = PowerIteration::new(Params::for_network(30).with_delta(1e-8))
            .solve(&m, &Prior::uniform(30));
        assert!(tight.cycles > loose.cycles);
    }

    #[test]
    fn try_solve_reports_no_convergence() {
        // The star matrix moves mass away from the uniform start, so a single
        // cycle cannot satisfy a tight threshold.
        let m = star_matrix(64);
        let params = Params { max_cycles: 1, delta: 1e-12, alpha: 0.0, ..Params::for_network(64) };
        let err = PowerIteration::new(params).try_solve(&m, &Prior::uniform(64));
        assert!(matches!(err, Err(CoreError::NoConvergence { iterations: 1 })));
    }

    #[test]
    fn residual_history_is_decreasing_overall() {
        let m = star_matrix(20);
        let out = PowerIteration::new(Params::for_network(20).with_delta(1e-9))
            .solve(&m, &Prior::uniform(20));
        let h = &out.residual_history;
        assert!(h.len() >= 3);
        assert!(h.last().unwrap() < h.first().unwrap());
        let rate = out.convergence_rate_estimate().unwrap();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
    }

    #[test]
    fn cycle_bound_matches_formula() {
        // log_0.5(1e-3) = ln(1e-3)/ln(0.5) ≈ 9.97 → 10
        assert_eq!(cycle_bound(1e-3, 0.5), Some(10));
        assert_eq!(cycle_bound(1e-3, 0.0), None);
        assert_eq!(cycle_bound(0.0, 0.5), None);
        assert_eq!(cycle_bound(1.5, 0.5), None);
        assert_eq!(cycle_bound(1e-3, 1.0), None);
    }

    #[test]
    fn empirical_cycles_respect_theoretical_bound() {
        // With α-mixing the rate is at most (1-α); check d ≤ ⌈log_(1-α) δ⌉.
        let m = star_matrix(50);
        let params = Params::for_network(50).with_delta(1e-6);
        let out = PowerIteration::new(params.clone()).solve(&m, &Prior::uniform(50));
        assert!(out.converged);
        let bound = cycle_bound(params.delta, 1.0 - params.alpha).unwrap();
        // Allow slack of a couple cycles for the residual metric differing
        // from the eigen-gap geometric model.
        assert!(out.cycles <= bound + 3, "cycles {} exceeded bound {}", out.cycles, bound);
    }
}
