//! Deterministic chaos-soak integration test: a 200-node service under
//! the injected fault matrix (epoch panics, fold/aggregate overruns,
//! ingest overload) with a concurrent reader, followed by a torn-tail
//! crash and WAL replay. Everything runs from one fixed chaos seed, so a
//! failure replays identically.
//!
//! The two invariants under test are the ones the paper's fault-tolerance
//! story owes the serving layer: **no acknowledged feedback is ever
//! lost**, and **no query ever observes a missing snapshot** (versions
//! only move forward), no matter which epochs die around it.

use gossiptrust::core::id::NodeId;
use gossiptrust::serve::chaos::ChaosConfig;
use gossiptrust::serve::service::{ReputationService, ServiceConfig, ServiceHandle};
use gossiptrust::workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 200;
/// The fixed fault schedule: change it and the whole soak replays
/// differently, so keep it stable to keep failures reproducible.
const CHAOS_SEED: u64 = 4242;

/// Scratch WAL directory under the harness-provided target tmpdir (no
/// ambient entropy; unique per test binary invocation via process id).
fn wal_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("gt-chaos-soak-{}", std::process::id()))
}

/// Flatten the raw local-trust rows to bit-exact `(rater, target, bits)`
/// triples for whole-log comparison.
fn flat_rows(h: &ServiceHandle) -> Vec<(usize, u32, u64)> {
    h.raw_rows()
        .iter()
        .enumerate()
        .flat_map(|(rater, row)| row.iter_raw().map(move |(id, amt)| (rater, id.0, amt.to_bits())))
        .collect()
}

#[test]
fn chaos_soak_loses_no_acked_feedback_and_always_serves_a_snapshot() {
    let dir = wal_dir();
    let _ = std::fs::remove_dir_all(&dir);

    let service = ReputationService::start(
        ServiceConfig::new(N)
            .with_seed(CHAOS_SEED)
            .with_ingest_queue(512)
            .with_epoch_deadline(Duration::from_millis(25))
            .with_wal_dir(&dir)
            .with_chaos(ChaosConfig::soak(CHAOS_SEED)),
    );
    let handle = service.handle();

    // Concurrent reader: a snapshot must be there on every query, and the
    // published version must never go backwards — even while epochs are
    // panicking and overrunning next door.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let handle = service.handle();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut queries = 0u64;
            let mut last_version = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = handle.snapshot();
                assert_eq!(snap.vector.n(), N, "query observed a missing snapshot");
                assert!(
                    snap.version >= last_version,
                    "version went backwards: {} -> {}",
                    last_version,
                    snap.version
                );
                last_version = snap.version;
                assert_eq!(handle.top_k(5).peers.len(), 5);
                queries += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            queries
        })
    };

    // Writers with retry-on-shed: every Ok is an acknowledgment the
    // service is held to across the crash below.
    let zipf = Zipf::new(N, 0.8);
    let mut rng = StdRng::seed_from_u64(CHAOS_SEED ^ 0xACED);
    let mut acked: Vec<(u32, u32, f64)> = Vec::new();
    let mut sheds_seen = 0u64;
    let (mut panics_seen, mut overruns_seen) = (0u64, 0u64);
    let mut tally = |panicked: bool, overran: bool| {
        panics_seen += u64::from(panicked);
        overruns_seen += u64::from(overran);
    };
    for _round in 0..3 {
        for rater in 0..N {
            for _ in 0..3 {
                let target = zipf.sample(&mut rng) - 1;
                if target == rater {
                    continue;
                }
                let score = 1.0 + rng.random::<f64>() * 4.0;
                for attempt in 0..3 {
                    match handle.record(
                        NodeId::from_index(rater),
                        NodeId::from_index(target),
                        score,
                    ) {
                        Ok(()) => {
                            acked.push((rater as u32, target as u32, score));
                            break;
                        }
                        Err(e) if e.retriable() && attempt < 2 => {
                            // An epoch folds the backlog — the drain a real
                            // client's backoff would wait for.
                            sheds_seen += 1;
                            let o = handle.run_epoch_now().expect("epoch loop alive");
                            tally(o.panicked, o.overran);
                        }
                        Err(e) => panic!("non-retriable record failure: {e}"),
                    }
                }
            }
        }
        let o = handle.run_epoch_now().expect("epoch loop alive");
        tally(o.panicked, o.overran);
    }
    stop.store(true, Ordering::Relaxed);
    let queries = reader.join().expect("reader thread panicked");
    assert!(queries > 0, "the reader must actually have queried");

    // The degradation counters must equal the faults dealt and observed.
    let stats = handle.stats_report();
    let chaos = service.chaos_report().expect("chaos armed");
    assert_eq!(stats.epochs_panicked, chaos.epochs_panicked);
    // `>=`: every *injected* overrun (50 ms pause vs the 25 ms deadline) is
    // abandoned, and a slow machine may add natural overruns on top.
    assert!(stats.epochs_overrun >= chaos.epochs_overrun);
    assert_eq!(stats.epochs_panicked, panics_seen);
    assert_eq!(stats.epochs_overrun, overruns_seen);
    assert_eq!(stats.requests_shed, sheds_seen);
    assert_eq!(stats.wal_appended_records, acked.len() as u64);
    service.shutdown();

    // Crash: tear the WAL tail the way a kill -9 mid-append would, then
    // restart and compare against a clean twin fed the ledger directly.
    let wal_file = std::fs::read_dir(&dir)
        .expect("wal dir")
        .next()
        .expect("wal file")
        .expect("dir entry")
        .path();
    let mut bytes = std::fs::read(&wal_file).expect("read wal");
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
    std::fs::write(&wal_file, &bytes).expect("tear tail");

    let restarted =
        ReputationService::start(ServiceConfig::new(N).with_seed(CHAOS_SEED).with_wal_dir(&dir));
    let twin = ReputationService::start(ServiceConfig::new(N).with_seed(CHAOS_SEED));
    let (rh, th) = (restarted.handle(), twin.handle());
    for &(rater, target, score) in &acked {
        th.record(NodeId(rater), NodeId(target), score).expect("twin ingest");
    }

    assert_eq!(rh.stats_report().wal_replayed_records, acked.len() as u64);
    assert_eq!(rh.events_ingested(), acked.len() as u64, "zero lost acknowledged feedback");
    assert_eq!(flat_rows(&rh), flat_rows(&th), "replayed rows differ from the twin's");

    // And the epoch the replayed log folds into publishes the bit-identical
    // snapshot the twin's does.
    assert!(rh.run_epoch_now().expect("epoch").published);
    assert!(th.run_epoch_now().expect("epoch").published);
    let bits = |h: &ServiceHandle| -> Vec<u64> {
        h.snapshot().vector.values().iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(bits(&rh), bits(&th), "replayed fold must aggregate bit-identically");

    restarted.shutdown();
    twin.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
