//! Chord DHT routing cost (what every EigenTrust fetch pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_baselines::Chord;
use gossiptrust_core::id::NodeId;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_build");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(Chord::build(n)));
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    group.throughput(Throughput::Elements(1));
    for &n in &[1_000usize, 10_000] {
        let dht = Chord::build(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % n as u32;
                black_box(dht.lookup_manager(NodeId(i), NodeId(i.wrapping_mul(31) % n as u32)))
            });
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(name = benches; config = short(); targets = bench_build, bench_lookup);
criterion_main!(benches);
