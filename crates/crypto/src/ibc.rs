//! Identity-based signing simulation for gossip messages.
//!
//! Real identity-based cryptography (Boneh–Franklin-style) lets any party
//! verify a signature using only the signer's *identity string* and global
//! public parameters, with per-identity private keys issued by a Private
//! Key Generator (PKG). We reproduce that **workflow** with symmetric
//! primitives:
//!
//! * the [`Pkg`] holds a master secret and derives each node's
//!   [`IdentityKey`] as `HMAC(master, identity)` — exactly the key-escrow
//!   trust model of a real PKG;
//! * nodes sign messages with `HMAC(identity_key, message)`;
//! * verification goes through a [`Verifier`] capability derived from the
//!   same master secret — the stand-in for IBC's public parameters. In a
//!   deployment the verifier role is played by the math of pairings; here
//!   it is a handle the simulation distributes to every node.
//!
//! The properties the GossipTrust protocol needs — tampered or spoofed
//! gossip is rejected, keys are bound to node identities, no per-pair key
//! exchange — all hold. What does *not* hold is public verifiability
//! against a malicious verifier, which no experiment in the paper relies
//! on. See DESIGN.md §5.

use crate::hmac::{constant_time_eq, hmac_sha256};
use bytes::{BufMut, Bytes, BytesMut};

/// The Private Key Generator.
#[derive(Clone)]
pub struct Pkg {
    master: [u8; 32],
}

impl Pkg {
    /// PKG with the given master secret (use a random one in practice).
    pub fn new(master: [u8; 32]) -> Self {
        Pkg { master }
    }

    /// Deterministic PKG for simulations, derived from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut master = [0u8; 32];
        master[..8].copy_from_slice(&seed.to_le_bytes());
        Pkg { master: hmac_sha256(b"gossiptrust-pkg-master", &master) }
    }

    /// Issue the private key for `identity`.
    pub fn issue(&self, identity: u32) -> IdentityKey {
        let key = hmac_sha256(&self.master, &identity.to_le_bytes());
        IdentityKey { identity, key }
    }

    /// The verification capability (stands in for IBC public parameters).
    pub fn verifier(&self) -> Verifier {
        Verifier { master: self.master }
    }
}

/// A node's identity-bound signing key.
#[derive(Clone)]
pub struct IdentityKey {
    identity: u32,
    key: [u8; 32],
}

impl IdentityKey {
    /// The identity this key is bound to.
    pub fn identity(&self) -> u32 {
        self.identity
    }

    /// Sign `message`.
    pub fn sign(&self, message: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.key, message)
    }

    /// Sign and wrap into a self-describing envelope.
    pub fn seal(&self, payload: &[u8]) -> SignedEnvelope {
        SignedEnvelope {
            sender: self.identity,
            payload: Bytes::copy_from_slice(payload),
            tag: self.sign(payload),
        }
    }
}

/// The verification capability.
#[derive(Clone)]
pub struct Verifier {
    master: [u8; 32],
}

impl Verifier {
    /// Verify that `tag` signs `message` under `identity`'s key.
    pub fn verify(&self, identity: u32, message: &[u8], tag: &[u8; 32]) -> bool {
        let key = hmac_sha256(&self.master, &identity.to_le_bytes());
        let expected = hmac_sha256(&key, message);
        constant_time_eq(&expected, tag)
    }

    /// Verify a sealed envelope.
    pub fn open(&self, envelope: &SignedEnvelope) -> Option<Bytes> {
        if self.verify(envelope.sender, &envelope.payload, &envelope.tag) {
            Some(envelope.payload.clone())
        } else {
            None
        }
    }
}

/// A signed gossip message: sender identity + payload + authentication tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedEnvelope {
    /// Claimed sender identity.
    pub sender: u32,
    /// Opaque payload bytes.
    pub payload: Bytes,
    /// HMAC tag over the payload.
    pub tag: [u8; 32],
}

impl SignedEnvelope {
    /// Serialize: `sender (4) | payload_len (4) | payload | tag (32)`.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.payload.len() + 32);
        buf.put_u32_le(self.sender);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.put_slice(&self.tag);
        buf.freeze()
    }

    /// Parse an encoded envelope; `None` on malformed input.
    pub fn decode(mut data: &[u8]) -> Option<SignedEnvelope> {
        if data.len() < 8 {
            return None;
        }
        let sender = u32::from_le_bytes(data[..4].try_into().ok()?);
        let len = u32::from_le_bytes(data[4..8].try_into().ok()?) as usize;
        data = &data[8..];
        if data.len() != len + 32 {
            return None;
        }
        let payload = Bytes::copy_from_slice(&data[..len]);
        let tag: [u8; 32] = data[len..].try_into().ok()?;
        Some(SignedEnvelope { sender, payload, tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let pkg = Pkg::from_seed(7);
        let key = pkg.issue(42);
        let verifier = pkg.verifier();
        let tag = key.sign(b"reputation vector chunk");
        assert!(verifier.verify(42, b"reputation vector chunk", &tag));
    }

    #[test]
    fn tampered_message_is_rejected() {
        let pkg = Pkg::from_seed(1);
        let key = pkg.issue(3);
        let verifier = pkg.verifier();
        let tag = key.sign(b"x=0.5,w=0.25");
        assert!(!verifier.verify(3, b"x=0.9,w=0.25", &tag));
    }

    #[test]
    fn spoofed_sender_is_rejected() {
        let pkg = Pkg::from_seed(2);
        let mallory = pkg.issue(13);
        let verifier = pkg.verifier();
        let tag = mallory.sign(b"msg");
        // Mallory claims to be node 7.
        assert!(!verifier.verify(7, b"msg", &tag));
    }

    #[test]
    fn keys_are_identity_bound_and_deterministic() {
        let pkg = Pkg::from_seed(3);
        let a1 = pkg.issue(5).sign(b"m");
        let a2 = pkg.issue(5).sign(b"m");
        let b = pkg.issue(6).sign(b"m");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn different_pkgs_are_incompatible() {
        let pkg1 = Pkg::from_seed(4);
        let pkg2 = Pkg::from_seed(5);
        let tag = pkg1.issue(1).sign(b"m");
        assert!(!pkg2.verifier().verify(1, b"m", &tag));
    }

    #[test]
    fn envelope_roundtrip() {
        let pkg = Pkg::from_seed(6);
        let key = pkg.issue(9);
        let env = key.seal(b"halved gossip pair");
        let encoded = env.encode();
        let decoded = SignedEnvelope::decode(&encoded).unwrap();
        assert_eq!(decoded, env);
        assert_eq!(
            pkg.verifier().open(&decoded).unwrap(),
            Bytes::from_static(b"halved gossip pair")
        );
    }

    #[test]
    fn envelope_tamper_detected_after_decode() {
        let pkg = Pkg::from_seed(8);
        let env = pkg.issue(2).seal(b"score update");
        let mut raw = env.encode().to_vec();
        raw[9] ^= 0x01; // flip a payload bit
        let decoded = SignedEnvelope::decode(&raw).unwrap();
        assert!(pkg.verifier().open(&decoded).is_none());
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(SignedEnvelope::decode(&[]).is_none());
        assert!(SignedEnvelope::decode(&[1, 2, 3]).is_none());
        // Length field inconsistent with the buffer.
        let pkg = Pkg::from_seed(9);
        let mut raw = pkg.issue(1).seal(b"abc").encode().to_vec();
        raw.truncate(raw.len() - 1);
        assert!(SignedEnvelope::decode(&raw).is_none());
    }
}
