//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint                    # run gt-lint over the whole workspace
//! cargo xtask lint --sarif out.sarif  # also write SARIF 2.1 for CI upload
//! cargo xtask lint --no-cache         # ignore the clean-run cache
//! cargo xtask lint --list-waivers     # print the active lint.toml waivers
//! cargo xtask lint --list-rules       # print the rule set
//! ```
//!
//! Exit status: 0 clean, 1 violations or expired waivers, 2
//! usage/configuration error.

#![forbid(unsafe_code)]

use gossiptrust_xtask::rules::RULE_NAMES;
use gossiptrust_xtask::{run_lint_with, sarif, walk};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand {other:?}; available: lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo xtask lint [--sarif <path>] [--no-cache] \
                 [--list-rules | --list-waivers]"
            );
            ExitCode::from(2)
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gt-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = walk::find_root(&cwd) else {
        eprintln!("gt-lint: no workspace root (Cargo.toml + crates/) above {}", cwd.display());
        return ExitCode::from(2);
    };

    if flags.iter().any(|f| f == "--list-rules") {
        for r in RULE_NAMES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }

    let mut sarif_path: Option<String> = None;
    let mut use_cache = true;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--sarif" => {
                let Some(p) = it.next() else {
                    eprintln!("gt-lint: --sarif needs a path");
                    return ExitCode::from(2);
                };
                sarif_path = Some(p.clone());
                // SARIF must reflect a real scan, not a cache hit.
                use_cache = false;
            }
            "--no-cache" => use_cache = false,
            "--list-waivers" => {}
            other => {
                eprintln!("gt-lint: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    if flags.iter().any(|f| f == "--list-waivers") {
        let text = std::fs::read_to_string(root.join("lint.toml")).unwrap_or_default();
        match gossiptrust_xtask::config::parse(&text) {
            Ok(cfg) => {
                for w in &cfg.waivers {
                    println!("{:<16} {:<44} expires {}  {}", w.rule, w.path, w.expires, w.reason);
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("gt-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match run_lint_with(&root, use_cache) {
        Ok(report) => {
            if let Some(path) = sarif_path {
                if let Err(e) = std::fs::write(&path, sarif::to_sarif(&report.violations)) {
                    eprintln!("gt-lint: writing SARIF to {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            for w in &report.unused_waivers {
                eprintln!(
                    "gt-lint: warning: unused waiver ({}, {}) — remove it from lint.toml",
                    w.rule, w.path
                );
            }
            for w in &report.expired_waivers {
                eprintln!(
                    "gt-lint: expired waiver ({}, {}) — expired {}; fix the code or renew \
                     with a fresh justification",
                    w.rule, w.path, w.expires
                );
            }
            if report.is_clean() {
                let cached = if report.from_cache { " (cached)" } else { "" };
                println!("gt-lint: {} files clean{cached}", report.files_scanned);
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
                }
                println!(
                    "gt-lint: {} violation(s), {} expired waiver(s) in {} files scanned",
                    report.violations.len(),
                    report.expired_waivers.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gt-lint: {e}");
            ExitCode::from(2)
        }
    }
}
