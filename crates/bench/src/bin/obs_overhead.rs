//! Prove the engine's obs hooks cost less than 2% per step.
//!
//! Runs the same seeded vector-gossip workload twice — once on a bare
//! engine, once with an [`EngineObs`] bundle attached (step histogram +
//! bytes counter, the exact hooks the service wires in) — interleaving
//! the timed batches so OS scheduling noise hits both arms equally, then
//! compares median ns/step. Writes `BENCH_obs.json` and exits nonzero
//! when the measured overhead exceeds the 2% budget, so CI's perf-smoke
//! job turns an instrumentation regression into a red build:
//!
//! ```text
//! cargo run --release -p gossiptrust-bench --bin obs_overhead
//! ```
//!
//! Set `GT_BENCH_QUICK=1` for a seconds-long smoke pass at reduced size
//! (recorded as such in the JSON).

use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::{TrustMatrix, TrustMatrixBuilder};
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_gossip::engine::{EngineConfig, EngineObs, VectorGossipEngine};
use gossiptrust_gossip::UniformChooser;
use gossiptrust_obs::{Registry, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Overhead budget (percent). The acceptance bar for the obs subsystem:
/// hooks above this cost would be too expensive to leave always-on.
const BUDGET_PCT: f64 = 2.0;

fn ring_matrix(n: usize) -> TrustMatrix {
    let mut b = TrustMatrixBuilder::new(n);
    for i in 0..n {
        b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 3.0);
        b.record(NodeId::from_index(i), NodeId::from_index((i + 7) % n), 1.0);
    }
    b.build()
}

fn seeded_engine(n: usize, m: &TrustMatrix) -> VectorGossipEngine {
    let config = EngineConfig::from_params(&Params::for_network(n), n).with_threads(1);
    let mut engine = VectorGossipEngine::new(n, config);
    engine.seed(m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
    engine
}

/// Time one batch of sequential steps; returns ns/step for the batch.
fn time_batch(engine: &mut VectorGossipEngine, rng: &mut StdRng, batch: usize) -> f64 {
    let t0 = Stopwatch::start();
    for _ in 0..batch {
        black_box(engine.step(&UniformChooser, rng));
    }
    t0.elapsed().as_nanos() as f64 / batch as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let quick = gossiptrust_core::params::bench_quick();
    let (n, batch, rounds) = if quick {
        (120, 50, 9)
    } else {
        (1_000, 200, 21)
    };
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let m = ring_matrix(n);
    let mut bare = seeded_engine(n, &m);
    let mut seen = seeded_engine(n, &m);
    let registry = Registry::default();
    seen.set_obs(Some(EngineObs {
        step_ns: registry.histogram("gt_gossip_step_ns"),
        bytes_streamed: registry.counter("gt_gossip_bytes_streamed_total"),
    }));

    // Twin RNG streams keep the two arms on identical gossip trajectories;
    // identical work is the whole point of the comparison.
    let mut rng_bare = StdRng::seed_from_u64(6);
    let mut rng_seen = StdRng::seed_from_u64(6);
    for _ in 0..3 {
        black_box(bare.step(&UniformChooser, &mut rng_bare));
        black_box(seen.step(&UniformChooser, &mut rng_seen));
    }

    let mut bare_ns: Vec<f64> = Vec::with_capacity(rounds);
    let mut seen_ns: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        bare_ns.push(time_batch(&mut bare, &mut rng_bare, batch));
        seen_ns.push(time_batch(&mut seen, &mut rng_seen, batch));
    }
    let bare_med = median(&mut bare_ns);
    let seen_med = median(&mut seen_ns);
    let overhead_pct = (seen_med - bare_med) / bare_med * 100.0;
    let within = overhead_pct <= BUDGET_PCT;
    println!(
        "n={n}  bare = {bare_med:.0} ns/step  instrumented = {seen_med:.0} ns/step  \
         overhead = {overhead_pct:+.2}%  (budget {BUDGET_PCT}%)"
    );
    assert_eq!(
        registry.histogram("gt_gossip_step_ns").count(),
        (rounds * batch) as u64 + 3,
        "every instrumented step must land in the histogram"
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"quick\": {quick},\n  \"cores\": {cores},\n  \
         \"n\": {n},\n  \"steps_per_arm\": {},\n  \"bare_ns_per_step\": {bare_med:.1},\n  \
         \"instrumented_ns_per_step\": {seen_med:.1},\n  \"overhead_pct\": {overhead_pct:.2},\n  \
         \"budget_pct\": {BUDGET_PCT},\n  \"within_budget\": {within}\n}}\n",
        rounds * batch
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    if !within {
        eprintln!("obs overhead {overhead_pct:.2}% exceeds the {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
}
