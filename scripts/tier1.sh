#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, then a quick end-to-end smoke of
# the experiment harness (which exercises the parallel gossip path on any
# multi-core machine — the engine auto-sizes to GT_THREADS or the
# available parallelism).
#
#   scripts/tier1.sh            # full gate
#   GT_THREADS=2 scripts/tier1.sh   # pin the gossip thread count
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

echo
echo "=== GT_QUICK=1 smoke of the full experiment harness ==="
GT_QUICK=1 cargo run --release -p gossiptrust-experiments --bin all

echo
echo "tier-1 gate passed"
