//! A minimized model of the engine's slab **ownership ping-pong** protocol
//! (see `WorkerPool` in `engine.rs`): per-worker job channels deliver an
//! owned task plus an `Arc` of the shared read state; workers mutate their
//! task, release the `Arc`, and send the task back over one shared result
//! channel; the caller computes task 0 itself and then reclaims the read
//! state with `Arc::try_unwrap`.
//!
//! The model checks the three properties the engine's safety rests on,
//! under scheduling jitter and across many rounds:
//!
//! 1. **ownership conservation** — every task comes back exactly once per
//!    round (never lost, never duplicated);
//! 2. **release-before-report** — `Arc::try_unwrap` on the read state
//!    succeeds every round, i.e. every worker dropped its reference
//!    *before* reporting its task back;
//! 3. **round isolation** — each task is advanced exactly once per round
//!    (a stale or double delivery would show up in the generation count).
//!
//! This is the loom-style model for the protocol minus the exhaustive
//! scheduler (loom is not a dependency of this workspace); the nightly
//! ThreadSanitizer CI job runs this same test with a data-race detector
//! underneath.

#![forbid(unsafe_code)]

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Stand-in for `StepRead`: shared, immutable during a round.
struct Read {
    round: u64,
}

/// Stand-in for `SlabTask`: owned by exactly one party at a time.
struct Task {
    id: usize,
    generation: u64,
    payload: Vec<u64>,
}

struct Job {
    read: Arc<Read>,
    task: Task,
}

const WORKERS: usize = 3;
const ROUNDS: u64 = 400;
const PAYLOAD: usize = 64;

#[test]
fn ownership_ping_pong_conserves_tasks_and_releases_reads() {
    let (result_tx, result_rx) = mpsc::channel::<Task>();
    let mut job_txs = Vec::with_capacity(WORKERS);
    let mut handles = Vec::with_capacity(WORKERS);
    for w in 0..WORKERS {
        let (tx, rx) = mpsc::channel::<Job>();
        let result_tx = result_tx.clone();
        handles.push(thread::spawn(move || {
            // Deterministic per-worker jitter (LCG — no ambient entropy)
            // to vary the interleaving between rounds.
            let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15 ^ (w as u64 + 1);
            while let Ok(Job { read, mut task }) = rx.recv() {
                task.generation += 1;
                assert_eq!(
                    task.generation, read.round,
                    "task {} advanced out of lockstep with the round",
                    task.id
                );
                for v in &mut task.payload {
                    *v = v.wrapping_add(read.round);
                }
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if lcg % 3 == 0 {
                    thread::yield_now();
                }
                // The protocol's load-bearing line: release the shared
                // read state BEFORE reporting back, so the caller's
                // `Arc::try_unwrap` can reclaim it.
                drop(read);
                if result_tx.send(task).is_err() {
                    break;
                }
            }
        }));
        job_txs.push(tx);
    }

    // WORKERS + 1 tasks: workers own 1..=WORKERS during a round, the
    // caller computes task 0 itself — exactly the engine's split.
    let mut tasks: Vec<Option<Task>> = (0..=WORKERS)
        .map(|id| Some(Task { id, generation: 0, payload: vec![0; PAYLOAD] }))
        .collect();

    for round in 1..=ROUNDS {
        let read = Arc::new(Read { round });
        for k in 1..=WORKERS {
            let task = tasks[k].take().expect("task checked out twice");
            job_txs[k - 1].send(Job { read: Arc::clone(&read), task }).expect("worker exited");
        }
        let mut own = tasks[0].take().expect("task 0 checked out twice");
        own.generation += 1;
        for v in &mut own.payload {
            *v = v.wrapping_add(round);
        }
        tasks[0] = Some(own);
        for _ in 0..WORKERS {
            let task = result_rx.recv().expect("worker panicked");
            let id = task.id;
            assert!(tasks[id].is_none(), "task {id} returned twice in one round");
            tasks[id] = Some(task);
        }
        // Property 2: every worker released its reference before its
        // result arrived, so the caller's reference is the only one left.
        let read = Arc::try_unwrap(read)
            .unwrap_or_else(|_| panic!("round {round}: a worker reported before releasing"));
        assert_eq!(read.round, round);
    }

    // Properties 1 and 3, cumulatively: every task advanced exactly once
    // per round, and every payload slot absorbed every round's increment.
    let expected_sum: u64 = (1..=ROUNDS).sum();
    for task in tasks.iter().map(|t| t.as_ref().expect("task missing at shutdown")) {
        assert_eq!(task.generation, ROUNDS, "task {}", task.id);
        assert!(task.payload.iter().all(|&v| v == expected_sum), "task {}", task.id);
    }

    // Shutdown exactly like `WorkerPool::drop`: closing the job channels
    // ends the worker loops; joining must not deadlock.
    drop(job_txs);
    for h in handles {
        h.join().expect("worker panicked during shutdown");
    }
}

/// Shutdown with jobs still in flight must not deadlock or lose a task:
/// the drain pattern the engine relies on when the pool is dropped
/// mid-stream.
#[test]
fn shutdown_with_inflight_jobs_is_clean() {
    let (result_tx, result_rx) = mpsc::channel::<Task>();
    let (tx, rx) = mpsc::channel::<Job>();
    let handle = thread::spawn(move || {
        while let Ok(Job { read, mut task }) = rx.recv() {
            task.generation += read.round;
            drop(read);
            if result_tx.send(task).is_err() {
                break;
            }
        }
    });
    for round in 1..=32u64 {
        let read = Arc::new(Read { round });
        tx.send(Job {
            read,
            task: Task { id: 0, generation: 0, payload: vec![] },
        })
        .expect("worker exited early");
    }
    // Close the job channel with results unread, then drain: all 32 tasks
    // must still come back before the channel disconnects.
    drop(tx);
    let mut seen = 0;
    while let Ok(task) = result_rx.recv() {
        assert!(task.generation > 0);
        seen += 1;
    }
    assert_eq!(seen, 32);
    handle.join().expect("worker panicked");
}
