//! Ablation: §7's Quality-of-Feedback discounting.

use gossiptrust_experiments::ablations::qof_discounting;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — QoF feedback-credibility discounting ({scale:?} scale)\n");
    let rows = qof_discounting(scale);
    let mut t = TextTable::new(vec![
        "gamma",
        "QoF",
        "rms error",
        "std",
        "honest QoF",
        "malicious QoF",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}%", r.gamma * 100.0),
            if r.qof_enabled { "on" } else { "off" }.to_string(),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
            format!("{:.3}", r.honest_qof),
            format!("{:.3}", r.malicious_qof),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: malicious raters score lower QoF; discounting");
    println!("their rows pulls the aggregate toward the honest ground truth.");
}
