//! Algorithm 2 (outer loop) — the aggregation-cycle driver.
//!
//! Each aggregation cycle `t` seeds the [`VectorGossipEngine`] from the
//! previous global vector `V(t−1)`, drives the gossip to ε-convergence,
//! reads out `V(t)`, and repeats until `|V(t) − V(t−1)| < δ`. Power nodes
//! are (re)selected from the freshest converged vector and blended in with
//! the greedy factor `α` on the next seeding, per §3 of the paper.

use crate::chooser::{TargetChooser, UniformChooser};
use crate::engine::{EngineConfig, VectorGossipEngine};
use crate::stats::GossipStats;
use gossiptrust_core::convergence::VectorConvergence;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::metrics::rms_relative_error;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::{PowerNodeSelector, Prior};
use gossiptrust_core::vector::ReputationVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the mixing prior evolves across aggregation cycles.
#[derive(Clone, Debug, PartialEq)]
pub enum PriorPolicy {
    /// Keep one fixed prior for the whole aggregation (e.g. uniform, or a
    /// power-node set carried over from the *previous* reputation round, as
    /// §3's "identify power nodes for the next round" describes).
    Fixed(Prior),
    /// Re-select the top-`q` power nodes from each freshly converged cycle
    /// vector (uniform prior on the very first cycle). This is the adaptive
    /// variant used for cold-start aggregations in the experiments.
    PowerNodesEachCycle,
}

/// Per-cycle measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Aggregation cycle index `t` (1-based).
    pub cycle: usize,
    /// Gossip steps the inner loop needed (the paper's `g`).
    pub gossip_steps: usize,
    /// Whether the inner loop hit its ε test (vs. exhausting the budget).
    pub gossip_converged: bool,
    /// RMS relative error of the gossiped cycle result against the exact
    /// centralized iterate for the same cycle — the paper's *gossip error*.
    pub gossip_error: f64,
    /// Outer-loop residual `|V(t) − V(t−1)|` after this cycle (average
    /// relative error); `None` for the first cycle.
    pub residual: Option<f64>,
    /// Message/bandwidth counters for this cycle.
    pub stats: GossipStats,
}

/// Result of a full gossip-based aggregation (Algorithm 2).
#[derive(Clone, Debug, PartialEq)]
pub struct AggregationReport {
    /// The converged global reputation vector.
    pub vector: ReputationVector,
    /// Aggregation cycles executed (the paper's `d`).
    pub cycles: usize,
    /// Whether the outer `δ` test fired within the cycle budget.
    pub converged: bool,
    /// Per-cycle measurements.
    pub per_cycle: Vec<CycleStats>,
    /// Power nodes selected from the final vector (for the next round).
    pub power_nodes: Vec<NodeId>,
}

impl AggregationReport {
    /// Total gossip steps across all cycles.
    pub fn total_gossip_steps(&self) -> usize {
        self.per_cycle.iter().map(|c| c.gossip_steps).sum()
    }

    /// Mean gossip steps per cycle (what Table 3's "Gossip Step" reports).
    pub fn mean_gossip_steps(&self) -> f64 {
        if self.per_cycle.is_empty() {
            return 0.0;
        }
        self.total_gossip_steps() as f64 / self.per_cycle.len() as f64
    }

    /// Summed message counters across cycles.
    pub fn total_stats(&self) -> GossipStats {
        let mut s = GossipStats::default();
        for c in &self.per_cycle {
            s.absorb(&c.stats);
        }
        s
    }

    /// Largest per-cycle gossip error (the error the gossip layer injects
    /// into the aggregation, before it compounds across cycles).
    pub fn max_gossip_error(&self) -> f64 {
        self.per_cycle.iter().map(|c| c.gossip_error).fold(0.0, f64::max)
    }
}

/// Drives full GossipTrust aggregations.
#[derive(Clone, Debug)]
pub struct GossipTrustAggregator {
    params: Params,
    engine_config: EngineConfig,
    prior_policy: PriorPolicy,
    selector: PowerNodeSelector,
    /// Gossip disturbers: `(node, inflated components, factor)`.
    corruption: Vec<(NodeId, Vec<u32>, f64)>,
}

impl GossipTrustAggregator {
    /// Aggregator with engine settings derived from `params`.
    pub fn new(params: Params) -> Self {
        let engine_config = EngineConfig::from_params(&params, params.n);
        let selector = PowerNodeSelector::new(params.max_power_nodes);
        GossipTrustAggregator {
            params,
            engine_config,
            prior_policy: PriorPolicy::PowerNodesEachCycle,
            selector,
            corruption: Vec::new(),
        }
    }

    /// Configure malicious gossip disturbers (see
    /// [`VectorGossipEngine::set_corruption`]): each entry makes `node`
    /// inflate the pushed `x` of the listed components by `factor` in every
    /// message it sends, across all cycles.
    pub fn with_corruption(mut self, corruption: Vec<(NodeId, Vec<u32>, f64)>) -> Self {
        self.corruption = corruption;
        self
    }

    /// Override the engine configuration (loss injection, step budgets, …).
    pub fn with_engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Override the prior policy.
    pub fn with_prior_policy(mut self, policy: PriorPolicy) -> Self {
        self.prior_policy = policy;
        self
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Run a full aggregation from the cold start `V(0) = uniform`.
    pub fn aggregate<R: Rng + ?Sized>(
        &self,
        matrix: &TrustMatrix,
        rng: &mut R,
    ) -> AggregationReport {
        self.aggregate_with(matrix, &ReputationVector::uniform(matrix.n()), &UniformChooser, rng)
    }

    /// Run a full aggregation from a caller-supplied start vector (warm
    /// start for reputation *updating*) and target chooser.
    pub fn aggregate_with<C: TargetChooser, R: Rng + ?Sized>(
        &self,
        matrix: &TrustMatrix,
        start: &ReputationVector,
        chooser: &C,
        rng: &mut R,
    ) -> AggregationReport {
        let mut engine = VectorGossipEngine::new(matrix.n(), self.engine_config.clone());
        self.aggregate_with_engine(&mut engine, matrix, start, chooser, rng)
    }

    /// Like [`aggregate_with`](Self::aggregate_with), but reusing a
    /// caller-owned engine (and thereby its persistent worker pool) across
    /// aggregations. [`VectorGossipEngine::seed`] fully resets the per-cycle
    /// state, so the result is **bit-identical** to a run on a fresh engine
    /// with the same RNG — only the engine's monotonic [`GossipStats`]
    /// counters carry over (capture them before the call and use
    /// [`GossipStats::diff`] for per-run deltas). This is what a long-running
    /// service uses to aggregate every epoch without respawning threads.
    pub fn aggregate_with_engine<C: TargetChooser, R: Rng + ?Sized>(
        &self,
        engine: &mut VectorGossipEngine,
        matrix: &TrustMatrix,
        start: &ReputationVector,
        chooser: &C,
        rng: &mut R,
    ) -> AggregationReport {
        let n = matrix.n();
        assert_eq!(start.n(), n, "start vector size mismatch");
        assert_eq!(engine.n(), n, "engine size mismatch");
        for (node, targets, factor) in &self.corruption {
            engine.set_corruption(*node, targets.clone(), *factor);
        }
        let mut outer = VectorConvergence::new(self.params.delta);
        outer.observe(start); // V(0) is the comparison base for cycle 1.

        let mut current = start.clone();
        let mut prior = match &self.prior_policy {
            PriorPolicy::Fixed(p) => p.clone(),
            PriorPolicy::PowerNodesEachCycle => Prior::uniform(n),
        };
        let mut per_cycle = Vec::new();
        let mut converged = false;

        for cycle in 1..=self.params.max_cycles {
            // Exact centralized iterate for this cycle, to measure the
            // gossip error in isolation.
            let mut exact = vec![0.0; n];
            matrix
                .transpose_mul(current.values(), &mut exact)
                .expect("dimensions match");
            prior.mix_into(&mut exact, self.params.alpha);

            engine.seed(matrix, &current, &prior, self.params.alpha);
            let stats_before = engine.stats();
            let (gossip_steps, gossip_converged) = engine.run(chooser, rng);
            // Per-cycle counters = difference against the running totals.
            let cycle_stats = engine.stats().diff(&stats_before);

            let estimate = engine.mean_estimate();
            let gossip_error = rms_relative_error(&exact, &estimate);

            let next =
                ReputationVector::from_weights(estimate.iter().map(|&x| x.max(0.0)).collect())
                    .expect("gossiped scores stay positive overall");

            let hit_delta = outer.observe(&next);
            per_cycle.push(CycleStats {
                cycle,
                gossip_steps,
                gossip_converged,
                gossip_error,
                residual: outer.last_residual(),
                stats: cycle_stats,
            });
            current = next;

            if let PriorPolicy::PowerNodesEachCycle = self.prior_policy {
                prior = self.selector.prior(&current);
            }

            if hit_delta {
                converged = true;
                break;
            }
        }

        let power_nodes = self.selector.select(&current);
        AggregationReport {
            vector: current,
            cycles: per_cycle.len(),
            converged,
            per_cycle,
            power_nodes,
        }
    }
}

/// The centralized mirror of [`GossipTrustAggregator`]: the exact vector
/// the outer loop *would* compute with zero gossip noise, under the same
/// greedy factor and [`PriorPolicy`] (including the per-cycle power-node
/// re-selection). This is the "calculated" ground truth the robustness
/// experiments (Fig. 4) compare the gossiped result against.
pub fn exact_reference(
    matrix: &TrustMatrix,
    params: &Params,
    policy: &PriorPolicy,
) -> ReputationVector {
    let n = matrix.n();
    let selector = PowerNodeSelector::new(params.max_power_nodes);
    let mut outer = VectorConvergence::new(params.delta);
    let mut current = ReputationVector::uniform(n);
    outer.observe(&current);
    let mut prior = match policy {
        PriorPolicy::Fixed(p) => p.clone(),
        PriorPolicy::PowerNodesEachCycle => Prior::uniform(n),
    };
    let mut next = vec![0.0; n];
    for _ in 1..=params.max_cycles {
        matrix
            .transpose_mul(current.values(), &mut next)
            .expect("dimensions match");
        prior.mix_into(&mut next, params.alpha);
        let next_vec =
            ReputationVector::from_weights(next.clone()).expect("stochastic iterate stays valid");
        let hit = outer.observe(&next_vec);
        current = next_vec;
        if let PriorPolicy::PowerNodesEachCycle = policy {
            prior = selector.prior(&current);
        }
        if hit {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use gossiptrust_core::power_iter::PowerIteration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_matrix(n: usize) -> TrustMatrix {
        // i trusts i+1 strongly and i+2 weakly: an asymmetric ergodic chain.
        let mut b = TrustMatrixBuilder::new(n);
        for i in 0..n {
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 3.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 2) % n), 1.0);
        }
        b.build()
    }

    fn authority_matrix(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 4.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        }
        b.record(NodeId(0), NodeId(1), 1.0);
        b.build()
    }

    #[test]
    fn aggregation_matches_centralized_oracle() {
        let n = 32;
        let m = authority_matrix(n);
        let params = Params::for_network(n);
        let agg = GossipTrustAggregator::new(params.clone())
            .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
        let mut rng = StdRng::seed_from_u64(100);
        let report = agg.aggregate(&m, &mut rng);
        assert!(report.converged, "outer loop must converge");

        let exact = PowerIteration::new(params).solve(&m, &Prior::uniform(n));
        let err = exact.vector.rms_relative_error(&report.vector).unwrap();
        assert!(err < 0.05, "rms error vs oracle: {err}");
        // Rankings agree on the authority.
        assert_eq!(report.vector.ranking()[0], NodeId(0));
    }

    #[test]
    fn per_cycle_stats_are_consistent() {
        let n = 16;
        let m = chain_matrix(n);
        let agg = GossipTrustAggregator::new(Params::for_network(n));
        let mut rng = StdRng::seed_from_u64(7);
        let report = agg.aggregate(&m, &mut rng);
        assert_eq!(report.cycles, report.per_cycle.len());
        assert!(report.cycles >= 1);
        let total: usize = report.per_cycle.iter().map(|c| c.gossip_steps).sum();
        assert_eq!(report.total_gossip_steps(), total);
        assert!(report.mean_gossip_steps() > 0.0);
        // Step counters from the engine line up with per-cycle sums.
        assert_eq!(report.total_stats().steps as usize, total);
        // First cycle has a residual (vs V(0) = uniform).
        assert!(report.per_cycle[0].residual.is_some());
        for c in &report.per_cycle {
            assert!(c.gossip_converged, "cycle {} ran out of step budget", c.cycle);
            assert!(c.gossip_error < 0.05, "cycle {} gossip error {}", c.cycle, c.gossip_error);
        }
    }

    #[test]
    fn tighter_delta_needs_more_cycles() {
        let n = 24;
        let m = authority_matrix(n);
        let mut rng = StdRng::seed_from_u64(19);
        let loose = GossipTrustAggregator::new(Params::for_network(n).with_delta(5e-2))
            .aggregate(&m, &mut rng);
        let mut rng = StdRng::seed_from_u64(19);
        let tight = GossipTrustAggregator::new(Params::for_network(n).with_delta(1e-5))
            .aggregate(&m, &mut rng);
        assert!(tight.cycles > loose.cycles, "{} vs {}", tight.cycles, loose.cycles);
    }

    #[test]
    fn warm_start_converges_quickly() {
        // Use a gossip threshold well below δ so the per-cycle gossip noise
        // floor cannot mask the outer convergence (the paper's Table 3 also
        // pairs ε one decade below δ for the same reason).
        let n = 24;
        let m = authority_matrix(n);
        let params = Params::for_network(n).with_epsilon(1e-7).with_delta(1e-3);
        let agg = GossipTrustAggregator::new(params.clone())
            .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
        let mut rng = StdRng::seed_from_u64(3);
        let cold = agg.aggregate(&m, &mut rng);
        assert!(cold.converged);
        let warm = agg.aggregate_with(&m, &cold.vector, &UniformChooser, &mut rng);
        assert!(warm.cycles <= 3, "warm start took {} cycles", warm.cycles);
        assert!(warm.cycles < cold.cycles);
    }

    #[test]
    fn power_nodes_are_reported_and_plausible() {
        let n = 32;
        let m = authority_matrix(n);
        let agg = GossipTrustAggregator::new(Params::for_network(n));
        let mut rng = StdRng::seed_from_u64(5);
        let report = agg.aggregate(&m, &mut rng);
        assert_eq!(report.power_nodes.len(), Params::for_network(n).max_power_nodes);
        // N0 and N1 are the two hubs and nearly tied; the adaptive
        // power-node prior is self-reinforcing, so either can end up on
        // top — but nothing else can.
        assert!(
            report.power_nodes[0] == NodeId(0) || report.power_nodes[0] == NodeId(1),
            "power node was {}",
            report.power_nodes[0]
        );
    }

    #[test]
    fn fixed_power_node_prior_biases_towards_power_nodes() {
        let n = 24;
        let m = chain_matrix(n);
        let power = vec![NodeId(3)];
        let agg = GossipTrustAggregator::new(Params::for_network(n).with_alpha(0.5))
            .with_prior_policy(PriorPolicy::Fixed(Prior::over_nodes(n, &power)));
        let mut rng = StdRng::seed_from_u64(13);
        let report = agg.aggregate(&m, &mut rng);
        // Node 3 receives a 0.5 jump mass: it must dominate.
        assert_eq!(report.vector.ranking()[0], NodeId(3));
    }

    #[test]
    fn exact_reference_matches_power_iteration_for_fixed_prior() {
        let n = 20;
        let m = chain_matrix(n);
        let params = Params::for_network(n).with_delta(1e-10);
        let reference = exact_reference(&m, &params, &PriorPolicy::Fixed(Prior::uniform(n)));
        let oracle = PowerIteration::new(params).solve(&m, &Prior::uniform(n));
        assert!(reference.l1_distance(&oracle.vector).unwrap() < 1e-8);
    }

    #[test]
    fn exact_reference_tracks_the_adaptive_aggregator() {
        // With tight ε the gossiped adaptive run should approach the exact
        // adaptive reference (same policy, same α).
        let n = 24;
        let m = authority_matrix(n);
        let params = Params::for_network(n).with_epsilon(1e-7);
        let reference = exact_reference(&m, &params, &PriorPolicy::PowerNodesEachCycle);
        let agg =
            GossipTrustAggregator::new(params).with_prior_policy(PriorPolicy::PowerNodesEachCycle);
        let mut rng = StdRng::seed_from_u64(55);
        let report = agg.aggregate(&m, &mut rng);
        let err = reference.rms_relative_error(&report.vector).unwrap();
        assert!(err < 0.2, "adaptive reference mismatch: {err}");
    }

    /// A long-lived engine driven through several aggregations must produce
    /// exactly what a fresh engine produces for the same RNG stream, and its
    /// monotonic counters must diff back to the per-run totals.
    #[test]
    fn engine_reuse_is_bit_identical_across_aggregations() {
        let n = 24;
        let m = authority_matrix(n);
        let params = Params::for_network(n);
        let agg = GossipTrustAggregator::new(params.clone());
        let mut engine = VectorGossipEngine::new(n, EngineConfig::from_params(&params, n));
        let start = ReputationVector::uniform(n);
        for seed in [5u64, 6, 7] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let before = engine.stats();
            let reused =
                agg.aggregate_with_engine(&mut engine, &m, &start, &UniformChooser, &mut rng_a);
            let fresh = agg.aggregate_with(&m, &start, &UniformChooser, &mut rng_b);
            assert_eq!(reused.vector.values(), fresh.vector.values(), "scores diverged");
            assert_eq!(reused.cycles, fresh.cycles);
            assert_eq!(engine.stats().diff(&before), fresh.total_stats());
        }
    }

    #[test]
    fn report_error_helpers() {
        let n = 16;
        let m = chain_matrix(n);
        let agg = GossipTrustAggregator::new(Params::for_network(n));
        let mut rng = StdRng::seed_from_u64(23);
        let report = agg.aggregate(&m, &mut rng);
        assert!(report.max_gossip_error() >= 0.0);
        assert!(report.max_gossip_error() < 0.05);
    }
}
