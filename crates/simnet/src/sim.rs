//! Asynchronous, event-driven execution of GossipTrust's push-sum cycle.
//!
//! The lock-step engine in `gossiptrust-gossip` models the paper's
//! synchronized gossip steps. Real unstructured networks are asynchronous:
//! nodes tick on their own clocks, messages take variable time, links drop,
//! peers come and go. This simulator runs **one aggregation cycle** of the
//! vector push-sum under exactly those conditions:
//!
//! * every online node fires a *gossip tick* every `tick_interval` µs
//!   (staggered start), keeping half of its `(x, w)` vector and pushing
//!   half to a random peer;
//! * the [`LinkModel`] delays or drops each push;
//! * an optional [`ChurnModel`] takes peers offline and back online —
//!   messages to offline peers are lost, and their frozen state rejoins the
//!   computation when they return;
//! * an oracle probe checks global consensus every `probe_interval` µs and
//!   stops the run once the relative spread of all estimates is below `ε`.
//!
//! Asynchronous push-sum retains the mass-conservation invariant (absent
//! loss), so the consensus value is unchanged; only the convergence *time*
//! and the residual error differ — which is exactly what the
//! fault-tolerance experiments measure.

use crate::churn::ChurnModel;
use crate::event::{EventQueue, SimTime};
use crate::link::LinkModel;
use crate::metrics::SimMetrics;
use crate::topology::Overlay;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;
use rand::Rng;

/// Where a node may send its gossip pushes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetScope {
    /// Any online node (the paper's default: "a neighbor node or any other
    /// node").
    Global,
    /// Only online overlay neighbors (strictly topology-constrained
    /// gossip; converges slower on sparse overlays — see the ablation).
    Neighbors,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Gossip tick period per node (µs).
    pub tick_interval: SimTime,
    /// Link latency/loss model.
    pub link: LinkModel,
    /// Optional churn process.
    pub churn: Option<ChurnModel>,
    /// Convergence threshold on the relative estimate spread.
    pub epsilon: f64,
    /// Oracle probe period (µs).
    pub probe_interval: SimTime,
    /// Hard stop (µs).
    pub max_time: SimTime,
    /// Gossip target scope.
    pub scope: TargetScope,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tick_interval: 100_000, // 100 ms
            link: LinkModel::default(),
            churn: None,
            epsilon: 1e-3,
            probe_interval: 200_000,
            max_time: 600_000_000, // 10 simulated minutes
            scope: TargetScope::Global,
        }
    }
}

/// Result of one asynchronous aggregation cycle.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Mean estimate over online nodes at the end of the run.
    pub estimate: Vec<f64>,
    /// Whether the ε-consensus probe fired before `max_time`.
    pub converged: bool,
    /// Virtual time consumed (µs).
    pub virtual_time: SimTime,
    /// Counters.
    pub metrics: SimMetrics,
}

enum Ev {
    Tick(u32),
    Deliver { to: u32, x: Vec<f64>, w: Vec<f64> },
    Leave(u32),
    Join(u32),
    Probe,
}

/// The asynchronous gossip simulator.
pub struct AsyncGossipSim {
    overlay: Overlay,
    config: SimConfig,
}

impl AsyncGossipSim {
    /// Simulator over `overlay` with `config`.
    pub fn new(overlay: Overlay, config: SimConfig) -> Self {
        assert!(config.tick_interval > 0, "tick interval must be positive");
        assert!(config.probe_interval > 0, "probe interval must be positive");
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        AsyncGossipSim { overlay, config }
    }

    /// Access the overlay (e.g. to pre-set offline nodes).
    pub fn overlay_mut(&mut self) -> &mut Overlay {
        &mut self.overlay
    }

    /// Run one aggregation cycle seeded per Algorithm 2 (see
    /// `gossiptrust-gossip`'s engine for the seeding identity).
    pub fn run_cycle<R: Rng + ?Sized>(
        &mut self,
        matrix: &TrustMatrix,
        v_prev: &ReputationVector,
        prior: &Prior,
        alpha: f64,
        rng: &mut R,
    ) -> SimReport {
        let n = self.overlay.n();
        assert_eq!(matrix.n(), n, "matrix size mismatch");
        assert_eq!(v_prev.n(), n, "vector size mismatch");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");

        // Seed x, w exactly like the synchronous engine.
        let p = prior.to_dense();
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut ws: Vec<Vec<f64>> = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId::from_index(i);
            let vi = v_prev.score(id);
            let mut xi: Vec<f64> = p.iter().map(|&pj| vi * alpha * pj).collect();
            if matrix.row_is_dangling(id) {
                let share = vi * (1.0 - alpha) / n as f64;
                for x in xi.iter_mut() {
                    *x += share;
                }
            } else {
                let (cols, vals) = matrix.row(id);
                for (&c, &s) in cols.iter().zip(vals) {
                    xi[c as usize] += vi * (1.0 - alpha) * s;
                }
            }
            let mut wi = vec![0.0; n];
            wi[i] = 1.0;
            xs.push(xi);
            ws.push(wi);
        }

        let mut metrics = SimMetrics::default();
        let mut queue: EventQueue<Ev> = EventQueue::new();

        // Staggered initial ticks.
        for i in 0..n {
            let offset = (i as u64 * self.config.tick_interval) / n as u64;
            queue.schedule_at(offset, Ev::Tick(i as u32));
        }
        // Churn bootstrap.
        if let Some(churn) = self.config.churn {
            for i in 0..n {
                let t = churn.sample_session(rng);
                queue.schedule_at(t, Ev::Leave(i as u32));
            }
        }
        queue.schedule_at(self.config.probe_interval, Ev::Probe);

        let mut converged = false;
        while let Some((now, ev)) = queue.pop() {
            if now > self.config.max_time {
                break;
            }
            match ev {
                Ev::Tick(i) => {
                    let iu = i as usize;
                    if self.overlay.is_online(NodeId(i)) {
                        metrics.ticks += 1;
                        let target = match self.config.scope {
                            TargetScope::Global => self.overlay.random_online_peer(NodeId(i), rng),
                            TargetScope::Neighbors => {
                                let ns = self.overlay.online_neighbors(NodeId(i));
                                if ns.is_empty() {
                                    None
                                } else {
                                    Some(ns[rng.random_range(0..ns.len())])
                                }
                            }
                        };
                        if let Some(t) = target {
                            for v in xs[iu].iter_mut() {
                                *v *= 0.5;
                            }
                            for v in ws[iu].iter_mut() {
                                *v *= 0.5;
                            }
                            metrics.messages_sent += 1;
                            match self.config.link.sample(rng) {
                                Some(delay) => queue.schedule_in(
                                    delay,
                                    Ev::Deliver { to: t.0, x: xs[iu].clone(), w: ws[iu].clone() },
                                ),
                                None => metrics.messages_dropped += 1,
                            }
                        }
                    }
                    queue.schedule_in(self.config.tick_interval, Ev::Tick(i));
                }
                Ev::Deliver { to, x, w } => {
                    if self.overlay.is_online(NodeId(to)) {
                        metrics.messages_delivered += 1;
                        let tu = to as usize;
                        for (d, s) in xs[tu].iter_mut().zip(&x) {
                            *d += s;
                        }
                        for (d, s) in ws[tu].iter_mut().zip(&w) {
                            *d += s;
                        }
                    } else {
                        metrics.messages_to_offline += 1;
                    }
                }
                Ev::Leave(i) => {
                    if self.overlay.is_online(NodeId(i)) {
                        self.overlay.go_offline(NodeId(i));
                        metrics.leaves += 1;
                    }
                    if let Some(churn) = self.config.churn {
                        let t = churn.sample_offline(rng);
                        queue.schedule_in(t, Ev::Join(i));
                    }
                }
                Ev::Join(i) => {
                    if !self.overlay.is_online(NodeId(i)) {
                        self.overlay.go_online(NodeId(i));
                        metrics.joins += 1;
                    }
                    if let Some(churn) = self.config.churn {
                        let t = churn.sample_session(rng);
                        queue.schedule_in(t, Ev::Leave(i));
                    }
                }
                Ev::Probe => {
                    if self.spread_below_epsilon(&xs, &ws) {
                        converged = true;
                        metrics.end_time = now;
                        break;
                    }
                    queue.schedule_in(self.config.probe_interval, Ev::Probe);
                }
            }
        }
        if metrics.end_time == 0 {
            metrics.end_time = queue.now().min(self.config.max_time);
        }

        // Mean estimate over online nodes.
        let online: Vec<usize> =
            self.overlay.online_nodes().into_iter().map(|id| id.index()).collect();
        let mut estimate = vec![0.0; n];
        let denom = online.len().max(1) as f64;
        for &i in &online {
            for (e, (&x, &w)) in estimate.iter_mut().zip(xs[i].iter().zip(&ws[i])) {
                if w > 0.0 {
                    *e += (x / w) / denom;
                }
            }
        }

        SimReport { estimate, converged, virtual_time: metrics.end_time, metrics }
    }

    /// Oracle: relative spread of the online nodes' estimates ≤ ε on every
    /// component (and every online estimate defined).
    fn spread_below_epsilon(&self, xs: &[Vec<f64>], ws: &[Vec<f64>]) -> bool {
        let online = self.overlay.online_nodes();
        if online.len() < 2 {
            return false;
        }
        let n = xs.len();
        for j in 0..n {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for id in &online {
                let i = id.index();
                let w = ws[i][j];
                if w <= 0.0 {
                    return false;
                }
                let b = xs[i][j] / w;
                lo = lo.min(b);
                hi = hi.max(b);
            }
            if hi - lo > self.config.epsilon * hi.abs().max(f64::MIN_POSITIVE) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_plus_chords(n: usize, seed: u64) -> Overlay {
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::random_k_out(n, 4, &mut rng)
    }

    fn test_matrix(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 0..n {
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 3.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 3) % n), 1.0);
        }
        b.build()
    }

    fn exact_cycle(m: &TrustMatrix, v: &ReputationVector, prior: &Prior, alpha: f64) -> Vec<f64> {
        let mut out = vec![0.0; m.n()];
        m.transpose_mul(v.values(), &mut out).unwrap();
        prior.mix_into(&mut out, alpha);
        out
    }

    #[test]
    fn async_cycle_matches_exact_matvec() {
        let n = 32;
        let m = test_matrix(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let cfg = SimConfig { link: LinkModel::fixed(30_000), epsilon: 1e-4, ..Default::default() };
        let mut sim = AsyncGossipSim::new(ring_plus_chords(n, 1), cfg);
        let mut rng = StdRng::seed_from_u64(2);
        let report = sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng);
        assert!(report.converged, "async gossip must converge");
        let exact = exact_cycle(&m, &v0, &prior, 0.15);
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for j in 0..n {
            let rel = (report.estimate[j] - exact[j]).abs() / exact[j];
            assert!(rel < 1e-2, "comp {j}: {} vs {}", report.estimate[j], exact[j]);
        }
        assert!(report.metrics.messages_delivered > 0);
        assert_eq!(report.metrics.messages_dropped, 0);
    }

    #[test]
    fn neighbor_scope_converges_but_slower() {
        let n = 24;
        let m = test_matrix(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let base =
            SimConfig { link: LinkModel::fixed(30_000), epsilon: 1e-3, ..Default::default() };

        let mut global_sim = AsyncGossipSim::new(ring_plus_chords(n, 3), base.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let global = global_sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng);

        let neighbor_cfg = SimConfig { scope: TargetScope::Neighbors, ..base };
        let mut neighbor_sim = AsyncGossipSim::new(ring_plus_chords(n, 3), neighbor_cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let neighbor = neighbor_sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng);

        assert!(global.converged && neighbor.converged);
        assert!(
            neighbor.virtual_time >= global.virtual_time,
            "neighbor-constrained gossip should not be faster: {} vs {}",
            neighbor.virtual_time,
            global.virtual_time
        );
    }

    #[test]
    fn lossy_links_still_converge_approximately() {
        let n = 32;
        let m = test_matrix(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let cfg = SimConfig {
            link: LinkModel::fixed(30_000).with_drop_rate(0.10),
            epsilon: 1e-3,
            ..Default::default()
        };
        let mut sim = AsyncGossipSim::new(ring_plus_chords(n, 5), cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let report = sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng);
        assert!(report.converged);
        assert!(report.metrics.messages_dropped > 0);
        let exact = exact_cycle(&m, &v0, &prior, 0.15);
        let mean_rel: f64 = (0..n)
            .map(|j| (report.estimate[j] - exact[j]).abs() / exact[j])
            .sum::<f64>()
            / n as f64;
        assert!(mean_rel < 0.3, "mean rel err {mean_rel}");
    }

    #[test]
    fn churn_processes_joins_and_leaves() {
        let n = 32;
        let m = test_matrix(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let cfg = SimConfig {
            link: LinkModel::fixed(30_000),
            churn: Some(ChurnModel::new(20_000_000, 5_000_000)), // 80% availability
            epsilon: 1e-3,
            max_time: 300_000_000,
            ..Default::default()
        };
        let mut sim = AsyncGossipSim::new(ring_plus_chords(n, 7), cfg);
        let mut rng = StdRng::seed_from_u64(8);
        let report = sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng);
        assert!(report.metrics.leaves > 0, "churn must trigger leaves");
        // Under churn the run may stop on the probe or on max_time; either
        // way the estimates must stay finite and broadly sensible.
        assert!(report.estimate.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let n = 16;
        let m = test_matrix(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let mk = || SimConfig { link: LinkModel::default(), epsilon: 1e-3, ..Default::default() };
        let run = |seed: u64| {
            let mut sim = AsyncGossipSim::new(ring_plus_chords(n, 9), mk());
            let mut rng = StdRng::seed_from_u64(seed);
            sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.virtual_time, b.virtual_time);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn max_time_bounds_the_run() {
        let n = 16;
        let m = test_matrix(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let cfg = SimConfig {
            epsilon: 1e-12, // unreachably tight
            max_time: 5_000_000,
            link: LinkModel::fixed(30_000),
            ..Default::default()
        };
        let mut sim = AsyncGossipSim::new(ring_plus_chords(n, 10), cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let report = sim.run_cycle(&m, &v0, &prior, 0.15, &mut rng);
        assert!(!report.converged);
        assert!(report.virtual_time <= 5_000_000 + 200_000);
    }
}
