//! Property-based tests for the core reputation math.
//!
//! These pin down the algebraic invariants the rest of the workspace builds
//! on: row-stochasticity of `S`, mass conservation of `Sᵀ·v`, normalization
//! of reputation vectors, metric axioms, and the fixed-point property of the
//! power iteration.

use gossiptrust_core::metrics::{mean_abs_error, rms_relative_error, top_k_overlap};
use gossiptrust_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random feedback list: (from, to, amount) triples over `n` nodes.
fn feedback_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    vec((0..n as u32, 0..n as u32, 0.01f64..100.0), 0..(n * 4).max(1))
}

fn build_matrix(n: usize, feedback: &[(u32, u32, f64)]) -> TrustMatrix {
    let mut b = TrustMatrixBuilder::new(n);
    for &(i, j, r) in feedback {
        b.record(NodeId(i), NodeId(j), r);
    }
    b.build()
}

proptest! {
    /// Eq. 1 normalization: every built matrix is row-stochastic.
    #[test]
    fn matrix_is_always_row_stochastic(
        n in 1usize..40,
        seedlist in feedback_strategy(40),
    ) {
        let feedback: Vec<_> = seedlist
            .into_iter()
            .map(|(i, j, r)| (i % n as u32, j % n as u32, r))
            .collect();
        let m = build_matrix(n, &feedback);
        prop_assert!(m.is_row_stochastic(1e-9));
    }

    /// Sᵀ preserves probability mass: Σ(Sᵀv) = Σv for any non-negative v.
    #[test]
    fn transpose_mul_conserves_mass(
        n in 1usize..30,
        seedlist in feedback_strategy(30),
        weights in vec(0.0f64..10.0, 30),
    ) {
        let feedback: Vec<_> = seedlist
            .into_iter()
            .map(|(i, j, r)| (i % n as u32, j % n as u32, r))
            .collect();
        let m = build_matrix(n, &feedback);
        let v: Vec<f64> = weights[..n].to_vec();
        let mass: f64 = v.iter().sum();
        let mut out = vec![0.0; n];
        m.transpose_mul(&v, &mut out).unwrap();
        let out_mass: f64 = out.iter().sum();
        prop_assert!((mass - out_mass).abs() < 1e-9 * mass.max(1.0),
            "mass {} -> {}", mass, out_mass);
        prop_assert!(out.iter().all(|&x| x >= -1e-15), "negative output");
    }

    /// from_weights always yields a normalized vector.
    #[test]
    fn reputation_vector_normalizes(weights in vec(0.0f64..1000.0, 1..50)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let v = ReputationVector::from_weights(weights).unwrap();
        let total: f64 = v.values().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(v.values().iter().all(|&x| x >= 0.0));
    }

    /// L1 distance is a metric: symmetric, zero on identity, triangle holds.
    #[test]
    fn l1_metric_axioms(
        a in vec(0.01f64..10.0, 2..20),
        b in vec(0.01f64..10.0, 2..20),
        c in vec(0.01f64..10.0, 2..20),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let va = ReputationVector::from_weights(a[..n].to_vec()).unwrap();
        let vb = ReputationVector::from_weights(b[..n].to_vec()).unwrap();
        let vc = ReputationVector::from_weights(c[..n].to_vec()).unwrap();
        let dab = va.l1_distance(&vb).unwrap();
        let dba = vb.l1_distance(&va).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert_eq!(va.l1_distance(&va).unwrap(), 0.0);
        let dac = va.l1_distance(&vc).unwrap();
        let dcb = vc.l1_distance(&vb).unwrap();
        prop_assert!(dab <= dac + dcb + 1e-12);
        // Normalized vectors are at most 2 apart in L1.
        prop_assert!(dab <= 2.0 + 1e-12);
    }

    /// The power iteration's output is a genuine fixed point of the mixed map
    /// and is reached from any normalized start.
    #[test]
    fn power_iteration_fixed_point(
        n in 2usize..20,
        seedlist in feedback_strategy(20),
        start_weights in vec(0.01f64..5.0, 20),
    ) {
        let feedback: Vec<_> = seedlist
            .into_iter()
            .map(|(i, j, r)| (i % n as u32, j % n as u32, r))
            .collect();
        let m = build_matrix(n, &feedback);
        let params = Params::for_network(n).with_delta(1e-10);
        let prior = Prior::uniform(n);
        let solver = PowerIteration::new(params.clone());
        let start = ReputationVector::from_weights(start_weights[..n].to_vec()).unwrap();
        let out = solver.solve_from(&m, &prior, &start);
        prop_assert!(out.converged, "alpha-mixed iteration must converge");
        // Fixed point check.
        let mut next = vec![0.0; n];
        m.transpose_mul(out.vector.values(), &mut next).unwrap();
        prior.mix_into(&mut next, params.alpha);
        for (x, y) in out.vector.values().iter().zip(&next) {
            prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
        }
        // Independence from the start: solving from uniform agrees.
        let out2 = solver.solve(&m, &prior);
        prop_assert!(out.vector.l1_distance(&out2.vector).unwrap() < 1e-6);
    }

    /// α-mixing with any prior keeps vectors normalized.
    #[test]
    fn prior_mixing_conserves_mass(
        n in 1usize..30,
        k in 0usize..10,
        alpha in 0.0f64..1.0,
        weights in vec(0.01f64..10.0, 30),
    ) {
        let nodes: Vec<NodeId> = (0..k.min(n)).map(NodeId::from_index).collect();
        let prior = Prior::over_nodes(n, &nodes);
        let v = ReputationVector::from_weights(weights[..n].to_vec()).unwrap();
        let mut vals = v.values().to_vec();
        prior.mix_into(&mut vals, alpha);
        prop_assert!((vals.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(vals.iter().all(|&x| x >= 0.0));
    }

    /// RMS error is zero iff the estimates match on all v>0 components, and
    /// is invariant under permuting components consistently.
    #[test]
    fn rms_error_properties(values in vec(0.01f64..1.0, 2..30)) {
        let zero = rms_relative_error(&values, &values);
        prop_assert_eq!(zero, 0.0);
        // Permutation invariance.
        let mut perm: Vec<usize> = (0..values.len()).collect();
        perm.reverse();
        let pv: Vec<f64> = perm.iter().map(|&i| values[i]).collect();
        let noisy: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        let pnoisy: Vec<f64> = perm.iter().map(|&i| noisy[i]).collect();
        let e1 = rms_relative_error(&values, &noisy);
        let e2 = rms_relative_error(&pv, &pnoisy);
        prop_assert!((e1 - e2).abs() < 1e-12);
    }

    /// mean_abs_error is bounded by the max component difference.
    #[test]
    fn mae_bounded_by_linf(
        a in vec(0.0f64..1.0, 1..30),
        b in vec(0.0f64..1.0, 1..30),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mae = mean_abs_error(a, b);
        let linf = a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
        prop_assert!(mae <= linf + 1e-12);
    }

    /// Rankings: top_k_overlap of a ranking with itself is always 1.
    #[test]
    fn top_k_self_overlap(weights in vec(0.01f64..10.0, 2..40), k in 1usize..10) {
        let v = ReputationVector::from_weights(weights).unwrap();
        let r = v.ranking();
        let k = k.min(r.len());
        prop_assert_eq!(top_k_overlap(&r, &r, k), 1.0);
    }

    /// LocalTrust: normalized rows always sum to 1 (when non-empty) and all
    /// shares are within [0, 1].
    #[test]
    fn local_trust_normalization(entries in vec((0u32..50, 0.01f64..100.0), 1..60)) {
        let mut lt = LocalTrust::new();
        for &(id, amount) in &entries {
            lt.add_feedback(NodeId(id), amount);
        }
        let norm = lt.normalized();
        prop_assert!(!norm.is_empty());
        let total: f64 = norm.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(norm.iter().all(|&(_, s)| (0.0..=1.0 + 1e-12).contains(&s)));
    }
}
