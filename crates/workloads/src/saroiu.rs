//! Per-peer shared-file counts, after Saroiu et al.'s Gnutella measurements.
//!
//! The paper assigns "each peer … a number of files based on the Sarioiu
//! distribution". Saroiu's measurement study found a heavily skewed
//! distribution of files shared per peer: a large fraction of peers share
//! few (or no) files while a small fraction share thousands (free-riding).
//! We model it as a mixture documented in DESIGN.md's substitution table:
//!
//! * a fraction of **free riders** sharing zero files (≈ 25% by default —
//!   Saroiu reported roughly a quarter of Gnutella peers sharing nothing);
//! * the remainder drawing from a **bounded Pareto** (shape ≈ 1.2), whose
//!   heavy tail reproduces the "few peers hold most content" skew that the
//!   file-sharing experiment's *shape* depends on.

use crate::powerlaw::BoundedPareto;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Saroiu-style distribution of shared-file counts per peer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaroiuFiles {
    /// Fraction of peers sharing zero files.
    pub free_rider_fraction: f64,
    /// Minimum files for a sharing peer.
    pub min_files: usize,
    /// Maximum files for a sharing peer.
    pub max_files: usize,
    /// Pareto shape of the sharing tail.
    pub shape: f64,
}

impl Default for SaroiuFiles {
    fn default() -> Self {
        SaroiuFiles { free_rider_fraction: 0.25, min_files: 10, max_files: 5_000, shape: 1.2 }
    }
}

impl SaroiuFiles {
    /// Sample one peer's shared-file count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if rng.random::<f64>() < self.free_rider_fraction {
            return 0;
        }
        let pareto = BoundedPareto::new(self.min_files as f64, self.max_files as f64, self.shape);
        pareto.sample(rng).round() as usize
    }

    /// Sample counts for `n` peers.
    pub fn sample_counts<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_riders_share_nothing() {
        let dist = SaroiuFiles { free_rider_fraction: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        assert!(dist.sample_counts(100, &mut rng).iter().all(|&c| c == 0));
    }

    #[test]
    fn sharing_peers_respect_bounds() {
        let dist = SaroiuFiles { free_rider_fraction: 0.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        for c in dist.sample_counts(5_000, &mut rng) {
            assert!((10..=5_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn free_rider_fraction_is_respected() {
        let dist = SaroiuFiles::default();
        let mut rng = StdRng::seed_from_u64(3);
        let counts = dist.sample_counts(20_000, &mut rng);
        let zero = counts.iter().filter(|&&c| c == 0).count() as f64 / 20_000.0;
        assert!((zero - 0.25).abs() < 0.02, "free riders {zero}");
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        // Top 10% of sharing peers should hold a disproportionate share of
        // all files (the skew the experiment depends on).
        let dist = SaroiuFiles { free_rider_fraction: 0.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = dist.sample_counts(10_000, &mut rng);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top10: usize = counts[..1_000].iter().sum();
        let share = top10 as f64 / total as f64;
        assert!(share > 0.35, "top-10% share {share}");
    }
}
