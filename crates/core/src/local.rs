//! Local trust scores: raw feedback accumulation and normalization (Eq. 1).

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outbound local-trust state of a single peer `i`.
///
/// After each transaction with peer `j`, peer `i` records a *feedback score*;
/// feedback accumulates into the raw local score `r_ij`. For global
/// aggregation the row is normalized per Eq. 1 of the paper:
///
/// ```text
/// s_ij = r_ij / Σ_j r_ij
/// ```
///
/// Raw scores are clamped at zero: the paper's trust matrix is non-negative
/// (`r_ij = 0` means "no feedback"), so negative experiences are expressed by
/// *not increasing* `r_ij` (a rating of 0), exactly like EigenTrust's
/// `max(sat - unsat, 0)` convention, which [`LocalTrust::rate_satisfaction`]
/// implements directly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalTrust {
    /// Sparse map from rated peer to accumulated raw score `r_ij ≥ 0`.
    scores: BTreeMap<NodeId, f64>,
    /// Count of satisfactory transactions per peer (for `rate_satisfaction`).
    sat: BTreeMap<NodeId, u64>,
    /// Count of unsatisfactory transactions per peer.
    unsat: BTreeMap<NodeId, u64>,
}

impl LocalTrust {
    /// Empty local-trust state (no feedback issued yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` to the raw score `r_ij` for peer `target`.
    ///
    /// Negative `amount` is clamped so `r_ij` never drops below zero.
    pub fn add_feedback(&mut self, target: NodeId, amount: f64) {
        let entry = self.scores.entry(target).or_insert(0.0);
        *entry = (*entry + amount).max(0.0);
        if *entry == 0.0 {
            // Keep the map sparse: a zero entry is the same as "no feedback".
            self.scores.remove(&target);
        }
    }

    /// Record a satisfactory (`true`) or unsatisfactory (`false`) transaction
    /// with `target` and refresh `r_ij = max(sat_ij − unsat_ij, 0)`.
    pub fn rate_satisfaction(&mut self, target: NodeId, satisfied: bool) {
        if satisfied {
            *self.sat.entry(target).or_insert(0) += 1;
        } else {
            *self.unsat.entry(target).or_insert(0) += 1;
        }
        let s = self.sat.get(&target).copied().unwrap_or(0) as f64;
        let u = self.unsat.get(&target).copied().unwrap_or(0) as f64;
        let r = (s - u).max(0.0);
        if r > 0.0 {
            self.scores.insert(target, r);
        } else {
            self.scores.remove(&target);
        }
    }

    /// Overwrite the raw score for `target` (used by threat models that issue
    /// dishonest feedback wholesale).
    pub fn set_raw(&mut self, target: NodeId, value: f64) {
        if value > 0.0 {
            self.scores.insert(target, value);
        } else {
            self.scores.remove(&target);
        }
    }

    /// Raw score `r_ij` for peer `target` (0 when never rated).
    pub fn raw(&self, target: NodeId) -> f64 {
        self.scores.get(&target).copied().unwrap_or(0.0)
    }

    /// Net satisfaction balance `sat_ij − unsat_ij` for `target` (0 when
    /// never rated via [`rate_satisfaction`](Self::rate_satisfaction)).
    ///
    /// Unlike the raw score, the balance can go negative — it is the local
    /// evidence a client uses to *avoid* peers that have personally cheated
    /// it, even though the paper's trust matrix clamps `r_ij` at zero.
    pub fn satisfaction_balance(&self, target: NodeId) -> i64 {
        let s = self.sat.get(&target).copied().unwrap_or(0) as i64;
        let u = self.unsat.get(&target).copied().unwrap_or(0) as i64;
        s - u
    }

    /// Number of distinct peers this node has issued feedback for
    /// (its feedback out-degree, the `d` of the power-law distribution).
    pub fn out_degree(&self) -> usize {
        self.scores.len()
    }

    /// Sum of all raw scores `Σ_j r_ij`.
    pub fn total(&self) -> f64 {
        self.scores.values().sum()
    }

    /// Iterate over `(target, r_ij)` pairs with `r_ij > 0`, in id order.
    pub fn iter_raw(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.scores.iter().map(|(&id, &r)| (id, r))
    }

    /// Normalized scores `s_ij = r_ij / Σ_j r_ij` (Eq. 1), in id order.
    ///
    /// Returns an empty vector when this node has issued no feedback; the
    /// [`crate::TrustMatrix`] treats such rows as uniform over all peers (the
    /// standard stochastic-matrix completion, cf. EigenTrust) so that `S`
    /// stays row-stochastic and the Markov chain stays well-defined.
    pub fn normalized(&self) -> Vec<(NodeId, f64)> {
        let total = self.total();
        if total <= 0.0 {
            return Vec::new();
        }
        self.scores.iter().map(|(&id, &r)| (id, r / total)).collect()
    }

    /// True when this node has issued no (positive) feedback at all.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Remove all feedback directed at `target` (used when a peer leaves the
    /// network for good and its column is retired).
    pub fn forget(&mut self, target: NodeId) {
        self.scores.remove(&target);
        self.sat.remove(&target);
        self.unsat.remove(&target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_accumulates() {
        let mut lt = LocalTrust::new();
        lt.add_feedback(NodeId(3), 2.0);
        lt.add_feedback(NodeId(3), 1.5);
        assert_eq!(lt.raw(NodeId(3)), 3.5);
        assert_eq!(lt.out_degree(), 1);
    }

    #[test]
    fn negative_feedback_clamps_at_zero() {
        let mut lt = LocalTrust::new();
        lt.add_feedback(NodeId(1), 1.0);
        lt.add_feedback(NodeId(1), -5.0);
        assert_eq!(lt.raw(NodeId(1)), 0.0);
        assert!(lt.is_empty(), "zero scores must not linger in the sparse map");
    }

    #[test]
    fn normalization_is_eq1() {
        let mut lt = LocalTrust::new();
        lt.add_feedback(NodeId(1), 1.0);
        lt.add_feedback(NodeId(2), 3.0);
        let norm = lt.normalized();
        assert_eq!(norm.len(), 2);
        assert!((norm[0].1 - 0.25).abs() < 1e-12);
        assert!((norm[1].1 - 0.75).abs() < 1e-12);
        let sum: f64 = norm.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12, "row must sum to 1");
    }

    #[test]
    fn empty_row_normalizes_to_empty() {
        assert!(LocalTrust::new().normalized().is_empty());
    }

    #[test]
    fn satisfaction_ratings_follow_eigentrust_convention() {
        let mut lt = LocalTrust::new();
        lt.rate_satisfaction(NodeId(7), true);
        lt.rate_satisfaction(NodeId(7), true);
        lt.rate_satisfaction(NodeId(7), false);
        assert_eq!(lt.raw(NodeId(7)), 1.0); // max(2-1, 0)
        lt.rate_satisfaction(NodeId(7), false);
        lt.rate_satisfaction(NodeId(7), false);
        assert_eq!(lt.raw(NodeId(7)), 0.0); // max(2-3, 0)
    }

    #[test]
    fn set_raw_overwrites_and_zero_removes() {
        let mut lt = LocalTrust::new();
        lt.set_raw(NodeId(2), 9.0);
        assert_eq!(lt.raw(NodeId(2)), 9.0);
        lt.set_raw(NodeId(2), 0.0);
        assert!(lt.is_empty());
    }

    #[test]
    fn forget_clears_all_state_for_target() {
        let mut lt = LocalTrust::new();
        lt.rate_satisfaction(NodeId(2), true);
        lt.forget(NodeId(2));
        assert!(lt.is_empty());
        // A later rating starts from scratch.
        lt.rate_satisfaction(NodeId(2), true);
        assert_eq!(lt.raw(NodeId(2)), 1.0);
    }

    #[test]
    fn iter_raw_is_id_ordered() {
        let mut lt = LocalTrust::new();
        lt.add_feedback(NodeId(9), 1.0);
        lt.add_feedback(NodeId(2), 1.0);
        let ids: Vec<u32> = lt.iter_raw().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![2, 9]);
    }
}
