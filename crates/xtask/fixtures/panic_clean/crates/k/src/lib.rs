//! Panic-path fixture (clean): the serving chain sheds instead of
//! panicking; the offline helper may still unwrap.
#![forbid(unsafe_code)]

/// Request-serving root.
pub fn serve(line: &str) -> u32 {
    handle(line)
}

fn handle(line: &str) -> u32 {
    line.parse::<u32>().unwrap_or_default()
}

/// Not reachable from `serve`: free to panic.
pub fn offline_tool(line: &str) -> u32 {
    line.parse::<u32>().unwrap()
}
