//! Experiment scale selection.

use gossiptrust_core::params::Params;

/// The gossip worker thread count the experiments will run with
/// (`GT_THREADS` env override, else the machine's available parallelism) —
/// printed by the binaries so recorded runs are attributable. Thread count
/// never changes results, only wall time: the engine's parallel step is
/// bit-identical to its sequential step.
pub fn gossip_threads() -> usize {
    Params::default().resolved_threads()
}

/// How big to run the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: n up to 1000, ≥ 5 seeds. Minutes of wall time.
    Paper,
    /// Reduced scale for CI and smoke runs: small n, 2 seeds. Seconds.
    Quick,
}

impl Scale {
    /// Read the scale from the `GT_QUICK` environment variable
    /// (strict boolean parse via [`gossiptrust_core::params::quick_mode`];
    /// a malformed value panics rather than silently running paper scale).
    pub fn from_env() -> Scale {
        if gossiptrust_core::params::quick_mode() {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Seeds to average over (the paper averages "at least 10 runs"; we
    /// default to 5 at paper scale to keep the full harness in minutes and
    /// record the choice in EXPERIMENTS.md). Override with `GT_SEEDS` for
    /// constrained machines; a malformed value panics (strict parsing via
    /// [`gossiptrust_core::params::strict_positive_env`]) rather than
    /// silently running the default seed count.
    pub fn seeds(self) -> u64 {
        if let Some(s) = gossiptrust_core::params::strict_positive_env("GT_SEEDS") {
            return s;
        }
        match self {
            Scale::Paper => 5,
            Scale::Quick => 2,
        }
    }

    /// The headline network size (Table 2: 1000). Override with `GT_N`
    /// for constrained machines (EXPERIMENTS.md records the value used
    /// per table); a malformed value panics (strict parsing via
    /// [`gossiptrust_core::params::network_size_override`]) rather than
    /// silently running the default size.
    pub fn n(self) -> usize {
        if let Some(n) = gossiptrust_core::params::network_size_override() {
            return n.max(8);
        }
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 120,
        }
    }

    /// The three network sizes of Fig. 3.
    pub fn fig3_sizes(self) -> [usize; 3] {
        match self {
            Scale::Paper => [250, 500, 1000],
            Scale::Quick => [60, 90, 120],
        }
    }

    /// Queries for the Fig. 5 file-sharing run.
    pub fn fig5_queries(self) -> usize {
        match self {
            Scale::Paper => 6000,
            Scale::Quick => 1200,
        }
    }

    /// Reputation refresh interval for Fig. 5 (paper: 1000).
    pub fn fig5_update_interval(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 300,
        }
    }

    /// Catalog size for Fig. 5 (paper: > 100 000).
    pub fn fig5_files(self) -> usize {
        match self {
            Scale::Paper => 100_000,
            Scale::Quick => 800,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_paper() {
        assert!(Scale::Quick.n() < Scale::Paper.n());
        assert!(Scale::Quick.seeds() <= Scale::Paper.seeds());
        assert!(Scale::Quick.fig5_queries() < Scale::Paper.fig5_queries());
        for (q, p) in Scale::Quick.fig3_sizes().iter().zip(Scale::Paper.fig3_sizes()) {
            assert!(q < &p);
        }
    }
}
