//! # gossiptrust-simnet
//!
//! A discrete-event P2P network simulator — the substrate behind the
//! paper's evaluation ("We evaluate GossipTrust using our own discrete
//! event driven simulator", §6.1).
//!
//! Components:
//!
//! * [`event`] — deterministic time-ordered event queue.
//! * [`topology`] — unstructured Gnutella-like overlay graphs (random
//!   `k`-out and power-law variants) with join/leave support.
//! * [`link`] — link model: latency sampling and message drop.
//! * [`churn`] — exponential session/offline churn process.
//! * [`sim`] — an asynchronous, event-driven execution of the GossipTrust
//!   push-sum protocol over the modeled network, used by the
//!   fault-tolerance and peer-dynamics experiments. (The lock-step
//!   synchronous engine used for the headline numbers lives in
//!   `gossiptrust-gossip`; this simulator demonstrates the same protocol
//!   under asynchrony, latency jitter, loss and churn.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod event;
pub mod link;
pub mod metrics;
pub mod sim;
pub mod topology;

pub use churn::ChurnModel;
pub use event::{EventQueue, SimTime};
pub use link::LinkModel;
pub use metrics::SimMetrics;
pub use sim::{AsyncGossipSim, SimConfig, SimReport, TargetScope};
pub use topology::Overlay;
