//! Security integration test: a man-in-the-middle transport that corrupts
//! or replays gossip pushes. The identity-based signatures must reject
//! every tampered message, and the protocol must still converge on the
//! surviving genuine traffic.

use bytes::Bytes;
use gossiptrust_core::prelude::*;
use gossiptrust_crypto::Pkg;
use gossiptrust_net::cluster::{Cluster, NetConfig};
use gossiptrust_net::node::{run_node, ClusterCounters, Control, NodeConfig};
use gossiptrust_net::transport::{InMemoryHandle, InMemoryNetwork, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::{mpsc, oneshot};

/// Flips one byte in every `period`-th message.
struct TamperingTransport {
    inner: InMemoryHandle,
    counter: Arc<AtomicU64>,
    period: u64,
}

impl Transport for TamperingTransport {
    async fn send(&self, to: u32, data: Bytes) {
        let seq = self.counter.fetch_add(1, Ordering::Relaxed);
        if seq % self.period == 0 && data.len() > 20 {
            let mut corrupted = data.to_vec();
            corrupted[12] ^= 0xFF; // flip a payload byte past the header
            self.inner.send(to, Bytes::from(corrupted)).await;
        } else {
            self.inner.send(to, data).await;
        }
    }
}

fn authority(n: usize) -> TrustMatrix {
    let mut b = TrustMatrixBuilder::new(n);
    for i in 1..n {
        b.record(NodeId::from_index(i), NodeId(0), 4.0);
        b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        b.record(NodeId(0), NodeId::from_index(i), 1.0);
    }
    b.build()
}

/// Drive a hand-built cluster of node actors over the tampering transport
/// for a fixed number of cycles and verify that (a) corrupted pushes are
/// rejected by signature verification, (b) genuine traffic still reaches
/// near-consensus.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tampered_pushes_are_rejected_and_gossip_survives() {
    let n = 10usize;
    let matrix = authority(n);
    let (net, receivers) = InMemoryNetwork::new(n, 1024, 0.0, 0);
    let tamper_counter = Arc::new(AtomicU64::new(0));
    let pkg = Pkg::from_seed(0xBEEF);
    let counters = Arc::new(ClusterCounters::default());
    let (converged_tx, mut converged_rx) = mpsc::channel::<(u32, u32)>(n * 2);

    let mut ctrl_txs = Vec::new();
    let mut tasks = Vec::new();
    for (i, net_rx) in receivers.into_iter().enumerate() {
        let id = NodeId::from_index(i);
        let (cols, vals) = matrix.row(id);
        let config = NodeConfig {
            id: i as u32,
            n,
            alpha: 0.15,
            epsilon: 1e-4,
            patience: 2,
            min_ticks: 4,
            max_ticks: 4_000,
            tick: Duration::from_millis(2),
            row: cols.iter().zip(vals).map(|(&c, &v)| (c, v)).collect(),
            key: pkg.issue(i as u32),
            verifier: pkg.verifier(),
            seed: 99,
        };
        let transport = TamperingTransport {
            inner: InMemoryHandle::new(Arc::clone(&net)),
            counter: Arc::clone(&tamper_counter),
            period: 10, // corrupt every 10th push (~10% MITM rate)
        };
        let (ctrl_tx, ctrl_rx) = mpsc::channel::<Control>(8);
        ctrl_txs.push(ctrl_tx);
        tasks.push(tokio::spawn(run_node(
            config,
            transport,
            net_rx,
            ctrl_rx,
            converged_tx.clone(),
            Arc::clone(&counters),
        )));
    }
    drop(converged_tx);

    // One cycle with a uniform prior.
    let prior = Arc::new(vec![1.0 / n as f64; n]);
    for tx in &ctrl_txs {
        tx.send(Control::StartCycle { cycle: 1, prior: Arc::clone(&prior) })
            .await
            .unwrap();
    }
    let mut reported = vec![false; n];
    let mut count = 0;
    let _ = tokio::time::timeout(Duration::from_secs(60), async {
        while count < n {
            match converged_rx.recv().await {
                Some((node, 1)) if !reported[node as usize] => {
                    reported[node as usize] = true;
                    count += 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    })
    .await;
    assert_eq!(count, n, "all nodes should converge despite tampering");

    // Collect estimates and stop.
    let mut estimates = Vec::new();
    for tx in &ctrl_txs {
        let (reply_tx, reply_rx) = oneshot::channel();
        tx.send(Control::EndCycle { reply: reply_tx }).await.unwrap();
        estimates.push(reply_rx.await.unwrap());
    }
    for tx in &ctrl_txs {
        let _ = tx.send(Control::Stop).await;
    }
    for t in tasks {
        let _ = t.await;
    }

    // Every corrupted push must have been rejected.
    let auth_failures = counters.auth_failures.load(Ordering::Relaxed);
    assert!(auth_failures > 0, "the MITM corrupted messages; some must be counted");

    // The genuine traffic still carries the cycle to a usable answer
    // (corrupted pushes lose their mass — like link loss, the ratios
    // survive approximately). The bound is a sanity check, not a
    // precision claim: under scheduler load the tick interleaving (and
    // hence which 10% of pushes the MITM hits) varies, and the precise
    // loss-vs-error trade is pinned by the deterministic engine tests.
    let mut exact = vec![0.0; n];
    matrix.transpose_mul(&vec![1.0 / n as f64; n], &mut exact).unwrap();
    Prior::uniform(n).mix_into(&mut exact, 0.15);
    let mean: Vec<f64> = (0..n)
        .map(|j| estimates.iter().map(|e| e[j]).sum::<f64>() / n as f64)
        .collect();
    let mean_rel: f64 = (0..n)
        .map(|j| (mean[j] - exact[j]).abs() / exact[j].max(1e-12))
        .sum::<f64>()
        / n as f64;
    assert!(mean_rel < 1.5, "estimates too far off: {mean_rel}");
}

/// The standard cluster over a clean transport counts zero auth failures —
/// the negative control for the test above.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn clean_transport_has_no_auth_failures() {
    let n = 8;
    let matrix = authority(n);
    let report = Cluster::in_memory(NetConfig::fast_local().with_seed(123))
        .run(&matrix, &Params::for_network(n))
        .await;
    assert!(report.converged);
    assert_eq!(report.auth_failures, 0);
}
