//! # gossiptrust-storage
//!
//! Compact reputation storage with Bloom filters — one of the three
//! innovations the paper's conclusion claims for GossipTrust ("efficient
//! reputation storage with Bloom filters", §7; detailed in the journal
//! version of the paper).
//!
//! The idea: a peer rarely needs exact global scores — it needs to know
//! *roughly how reputable* another peer is (e.g. to pick a download source
//! or the power nodes). Instead of storing `n` `(id, f64)` pairs, the
//! scores are bucketed into a small number of *rank levels* (say 8), and
//! each level stores its member ids in a Bloom filter. A score query
//! becomes `k` membership probes per level; storage drops from
//! `n·(4+8)` bytes to a few hundred bytes per level at a tunable
//! false-positive rate.
//!
//! * [`bloom`] — a from-scratch Bloom filter (double hashing, no external
//!   crates).
//! * [`ranks`] — the [`ranks::RankStorage`] built on it, with the
//!   level-assignment policy and the rank-error analysis used by the
//!   storage ablation experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod counting;
pub mod ranks;

pub use bloom::BloomFilter;
pub use counting::CountingBloomFilter;
pub use ranks::{RankStorage, RankStorageConfig};
