//! Module and call graph over the whole workspace.
//!
//! Built from [`crate::parser::ParsedFile`]s, the graph holds one node per
//! production function and a directed edge per *resolved* call site. The
//! resolver is approximate by design (no type inference, no trait
//! dispatch); it errs toward precision using tiered name matching:
//!
//! - **Qualified path calls** (`Stopwatch::start`, `engine::step`): every
//!   written qualifier must match the candidate's crate, module path or
//!   `impl` type. Same-crate matches win over cross-crate ones.
//! - **Bare calls** (`helper()`): same module first, then the file's
//!   `use`-imports, then same crate; a cross-crate match is accepted only
//!   when the name is unique workspace-wide.
//! - **Method calls** (`.record(…)`): no receiver types exist at token
//!   level, so the resolver takes every same-crate method of that name,
//!   and crosses crates only when the name is unique in the workspace.
//!
//! Known imprecision (see `DESIGN.md` §8): trait-object and generic
//! dispatch resolve to every same-crate candidate (over-approximation —
//! safe for reachability rules, may over-flag); calls into `std` or
//! external crates resolve to nothing (under-approximation — a taint
//! source hidden behind an external callback is invisible, which is why
//! the lexical per-file rules stay on).

use crate::parser::{Call, ParsedFile};
use std::collections::HashMap;
use std::path::Path;

/// One workspace crate (or the root facade).
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// Directory name under `crates/` (empty string for the root package).
    pub dir: String,
    /// Names a path qualifier may use for this crate: the directory name
    /// plus the package name with `-` → `_` (e.g. `service`,
    /// `gossiptrust_serve`).
    pub aliases: Vec<String>,
}

/// One function in the graph (denormalized from the parse results).
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Repo-relative path of the defining file.
    pub rel: String,
    /// Index into [`Graph::crates`].
    pub krate: usize,
    /// Full module path: file position plus inline `mod`s.
    pub module: Vec<String>,
    /// Enclosing `impl` self type, if any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Declared `async`.
    pub is_async: bool,
    /// Behind a `#[cfg(feature=…)]`-style gate.
    pub cfg_gated: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body in the file's token stream, inclusive.
    pub body: (usize, usize),
}

impl FnNode {
    /// Display name: `Type::name` or plain `name`.
    pub fn label(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Workspace crates, root facade included.
    pub crates: Vec<CrateInfo>,
    /// All production functions.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[n]` are `n`'s resolved callees.
    pub edges: Vec<Vec<Edge>>,
}

/// BFS result over the graph.
#[derive(Clone, Debug)]
pub struct Reach {
    /// `parent[n]` = predecessor on a shortest path from some root, for
    /// reachable non-root nodes.
    pub parent: Vec<Option<usize>>,
    /// `visited[n]` = reachable from the root set (roots included).
    pub visited: Vec<bool>,
}

impl Reach {
    /// The root-to-`node` chain (inclusive), shortest-path.
    pub fn chain(&self, node: usize) -> Vec<usize> {
        let mut out = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur] {
            out.push(p);
            cur = p;
        }
        out.reverse();
        out
    }
}

/// Which crate a repo-relative path belongs to: `crates/<dir>/…` → `dir`,
/// anything else → the root package (empty dir).
fn crate_dir(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|t| t.split('/').next())
        .unwrap_or("")
}

/// Read the `name = "…"` out of a Cargo.toml, tolerating absence.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("name") {
            let v = v.trim_start();
            if let Some(v) = v.strip_prefix('=') {
                let v = v.trim();
                return v
                    .strip_prefix('"')
                    .and_then(|v| v.split('"').next())
                    .map(str::to_string);
            }
        }
        if line.starts_with('[') && line != "[package]" && !text.contains("[package]") {
            break;
        }
    }
    None
}

impl Graph {
    /// Build the graph from parsed files. `root` is used only to read
    /// crate manifests for path-qualifier aliases.
    pub fn build(root: &Path, files: &[ParsedFile]) -> Graph {
        // Crate table.
        let mut crates: Vec<CrateInfo> = Vec::new();
        let mut crate_index: HashMap<String, usize> = HashMap::new();
        for f in files {
            let dir = crate_dir(&f.rel).to_string();
            if crate_index.contains_key(&dir) {
                continue;
            }
            let manifest = if dir.is_empty() {
                root.join("Cargo.toml")
            } else {
                root.join("crates").join(&dir).join("Cargo.toml")
            };
            let mut aliases = Vec::new();
            if !dir.is_empty() {
                aliases.push(dir.clone());
            }
            if let Some(pkg) = package_name(&manifest) {
                aliases.push(pkg.replace('-', "_"));
            }
            crate_index.insert(dir.clone(), crates.len());
            crates.push(CrateInfo { dir, aliases });
        }

        // Node table.
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut node_calls: Vec<(usize, Vec<Call>)> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let krate = crate_index[crate_dir(&f.rel)];
            for item in &f.fns {
                let mut module = f.module.clone();
                module.extend(item.module.iter().cloned());
                let idx = nodes.len();
                nodes.push(FnNode {
                    file: fi,
                    rel: f.rel.clone(),
                    krate,
                    module,
                    impl_type: item.impl_type.clone(),
                    name: item.name.clone(),
                    is_async: item.is_async,
                    cfg_gated: item.cfg_gated,
                    line: item.line,
                    body: item.body,
                });
                node_calls.push((idx, item.calls.clone()));
            }
        }

        let mut graph = Graph { crates, nodes, edges: Vec::new() };
        graph.edges = vec![Vec::new(); graph.nodes.len()];

        // Name index.
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(i);
        }
        for (caller, call_list) in &node_calls {
            for call in call_list {
                for callee in graph.resolve(files, *caller, call, &by_name) {
                    if callee == *caller {
                        continue;
                    }
                    let known = graph.edges[*caller].iter().any(|e| e.to == callee);
                    if !known {
                        graph.edges[*caller].push(Edge { to: callee, line: call.line });
                    }
                }
            }
        }
        graph
    }

    /// Does `qual` name something about `cand` — its crate, a module
    /// segment, or its `impl` type?
    fn qual_matches(&self, cand: &FnNode, qual: &str) -> bool {
        self.crates[cand.krate].aliases.iter().any(|a| a == qual)
            || cand.module.iter().any(|m| m == qual)
            || cand.impl_type.as_deref() == Some(qual)
    }

    /// Resolve one call from `caller` to candidate node indices.
    fn resolve(
        &self,
        files: &[ParsedFile],
        caller: usize,
        call: &Call,
        by_name: &HashMap<String, Vec<usize>>,
    ) -> Vec<usize> {
        let Some(name) = call.segments.last() else {
            return Vec::new();
        };
        let Some(cands) = by_name.get(name) else {
            return Vec::new();
        };
        let me = &self.nodes[caller];

        if call.is_method {
            let methods: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].impl_type.is_some())
                .collect();
            let same_crate: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].krate == me.krate)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            if methods.len() == 1 {
                return methods;
            }
            return Vec::new();
        }

        let quals: Vec<&str> = call.segments[..call.segments.len() - 1]
            .iter()
            .map(|s| {
                if s == "Self" {
                    me.impl_type.as_deref().unwrap_or("Self")
                } else {
                    s.as_str()
                }
            })
            .collect();

        if quals.is_empty() {
            // Bare call: same module → use-imports → same crate → unique
            // workspace-wide.
            let same_module: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let n = &self.nodes[c];
                    n.impl_type.is_none() && n.krate == me.krate && n.module == me.module
                })
                .collect();
            if !same_module.is_empty() {
                return same_module;
            }
            if let Some(import) = files[me.file]
                .uses
                .iter()
                .find(|u| u.last().map(String::as_str) == Some(name.as_str()))
            {
                let import_quals: Vec<&str> =
                    import[..import.len() - 1].iter().map(String::as_str).collect();
                let matched = self.qualified(cands, me, &import_quals);
                if !matched.is_empty() {
                    return matched;
                }
            }
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let n = &self.nodes[c];
                    n.impl_type.is_none() && n.krate == me.krate
                })
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].impl_type.is_none())
                .collect();
            if free.len() == 1 {
                return free;
            }
            return Vec::new();
        }

        self.qualified(cands, me, &quals)
    }

    /// Qualified match: every qualifier must describe the candidate.
    /// Same-crate candidates shadow cross-crate ones.
    fn qualified(&self, cands: &[usize], me: &FnNode, quals: &[&str]) -> Vec<usize> {
        let matched: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| quals.iter().all(|q| self.qual_matches(&self.nodes[c], q)))
            .collect();
        let same_crate: Vec<usize> = matched
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].krate == me.krate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        matched
    }

    /// Nodes matching a `name` or `Type::name` spec from `lint.toml`.
    pub fn match_spec(&self, spec: &str) -> Vec<usize> {
        let (ty, name) = match spec.rsplit_once("::") {
            Some((t, n)) => (Some(t), n),
            None => (None, spec),
        };
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == name && ty.is_none_or(|t| n.impl_type.as_deref() == Some(t)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Multi-source BFS along call edges.
    pub fn reach(&self, roots: &[usize]) -> Reach {
        let mut parent = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            if !visited[r] {
                visited[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if !visited[e.to] {
                    visited[e.to] = true;
                    parent[e.to] = Some(n);
                    queue.push_back(e.to);
                }
            }
        }
        Reach { parent, visited }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn build(files: &[(&str, &str)]) -> (Graph, Vec<ParsedFile>) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(rel, src)| parse_file(rel, &tokenize(src)))
            .collect();
        let g = Graph::build(Path::new("/nonexistent"), &parsed);
        (g, parsed)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.name == name).unwrap()
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        g.edges[idx(g, from)].iter().any(|e| g.nodes[e.to].name == to)
    }

    #[test]
    fn bare_calls_resolve_within_module_then_crate() {
        let (g, _) = build(&[
            ("crates/a/src/m.rs", "pub fn top() { helper(); } fn helper() { other(); }"),
            ("crates/a/src/n.rs", "pub fn other() {}"),
            ("crates/b/src/lib.rs", "pub fn other() {}"),
        ]);
        assert!(has_edge(&g, "top", "helper"));
        // `other` exists in both crates; same-crate wins, exclusively.
        let callees: Vec<&str> = g.edges[idx(&g, "helper")]
            .iter()
            .map(|e| g.nodes[e.to].rel.as_str())
            .collect();
        assert_eq!(callees, vec!["crates/a/src/n.rs"]);
    }

    #[test]
    fn qualified_calls_match_modules_and_types() {
        let (g, _) = build(&[
            ("crates/a/src/lib.rs", "pub fn go() { engine::step(); Stopwatch::start(); }"),
            ("crates/a/src/engine.rs", "pub fn step() {}"),
            (
                "crates/obs/src/time.rs",
                "pub struct Stopwatch; impl Stopwatch { pub fn start() {} }",
            ),
        ]);
        assert!(has_edge(&g, "go", "step"));
        assert!(has_edge(&g, "go", "start"));
    }

    #[test]
    fn method_calls_prefer_same_crate_and_need_uniqueness_across() {
        let (g, _) = build(&[
            (
                "crates/a/src/lib.rs",
                "struct S; impl S { fn m(&self) {} } pub fn f(s: &S) { s.m(); }",
            ),
            ("crates/b/src/lib.rs", "struct T; impl T { fn m(&self) {} }"),
            ("crates/c/src/lib.rs", "pub fn caller(x: &X) { x.uniq(); }"),
            ("crates/d/src/lib.rs", "struct U; impl U { fn uniq(&self) {} }"),
        ]);
        // `m` is ambiguous across crates: only the same-crate edge exists.
        let m_edges = &g.edges[idx(&g, "f")];
        assert_eq!(m_edges.len(), 1);
        assert_eq!(g.nodes[m_edges[0].to].rel, "crates/a/src/lib.rs");
        // `uniq` is unique workspace-wide: the cross-crate edge exists.
        assert!(has_edge(&g, "caller", "uniq"));
    }

    #[test]
    fn use_imports_steer_bare_calls() {
        let (g, _) = build(&[
            ("crates/a/src/lib.rs", "use crate::util::shared;\npub fn f() { shared(); }"),
            ("crates/a/src/util.rs", "pub fn shared() {}"),
            ("crates/b/src/lib.rs", "pub fn shared() {}"),
        ]);
        let callees: Vec<&str> = g.edges[idx(&g, "f")]
            .iter()
            .map(|e| g.nodes[e.to].rel.as_str())
            .collect();
        assert_eq!(callees, vec!["crates/a/src/util.rs"]);
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let (g, _) = build(&[(
            "crates/a/src/lib.rs",
            "struct S; impl S { fn a() { Self::b(); } fn b() {} }\
             struct T; impl T { fn b() {} }",
        )]);
        let callees: Vec<String> =
            g.edges[idx(&g, "a")].iter().map(|e| g.nodes[e.to].label()).collect();
        assert_eq!(callees, vec!["S::b"]);
    }

    #[test]
    fn reach_walks_transitively_with_chains() {
        let (g, _) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { mid(); } fn mid() { leaf(); } fn leaf() {} fn island() {}",
        )]);
        let r = g.reach(&g.match_spec("root"));
        assert!(r.visited[idx(&g, "leaf")]);
        assert!(!r.visited[idx(&g, "island")]);
        let chain: Vec<String> = r
            .chain(idx(&g, "leaf"))
            .into_iter()
            .map(|n| g.nodes[n].name.clone())
            .collect();
        assert_eq!(chain, vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn specs_select_by_type_and_name() {
        let (g, _) = build(&[(
            "crates/a/src/lib.rs",
            "struct Wal; impl Wal { fn open() {} } struct Db; impl Db { fn open() {} } fn open() {}",
        )]);
        assert_eq!(g.match_spec("Wal::open").len(), 1);
        assert_eq!(g.match_spec("open").len(), 3);
    }
}
