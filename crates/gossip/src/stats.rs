//! Instrumentation counters for gossip runs.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a gossip engine.
///
/// A "message" is one gossip pair/vector pushed across the network (the
/// self-half a node keeps is *not* counted — it never touches a link).
/// `triplets_sent` approximates bandwidth: for the vector protocol each
/// message carries `n` triplets, for the scalar protocol exactly one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipStats {
    /// Gossip steps executed.
    pub steps: u64,
    /// Messages pushed onto the network (excluding self-halves).
    pub messages_sent: u64,
    /// Messages lost to injected link failures.
    pub messages_dropped: u64,
    /// Total triplets carried by sent messages (bandwidth proxy).
    pub triplets_sent: u64,
}

impl GossipStats {
    /// Merge another counter set into this one (used when summing cycles).
    pub fn absorb(&mut self, other: &GossipStats) {
        self.steps += other.steps;
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
        self.triplets_sent += other.triplets_sent;
    }

    /// Counter deltas accumulated since `before` was captured (the inverse
    /// of [`absorb`](Self::absorb)): `before.diff(&after)` on a monotonic
    /// engine counter yields exactly the activity of the interval. Panics
    /// (in debug) if `before` is not a prefix of `self` — counters never
    /// decrease.
    pub fn diff(&self, before: &GossipStats) -> GossipStats {
        debug_assert!(
            self.steps >= before.steps
                && self.messages_sent >= before.messages_sent
                && self.messages_dropped >= before.messages_dropped
                && self.triplets_sent >= before.triplets_sent,
            "diff against a later snapshot"
        );
        GossipStats {
            steps: self.steps - before.steps,
            messages_sent: self.messages_sent - before.messages_sent,
            messages_dropped: self.messages_dropped - before.messages_dropped,
            triplets_sent: self.triplets_sent - before.triplets_sent,
        }
    }

    /// Fraction of sent messages that were dropped (0 when nothing sent).
    pub fn drop_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_dropped as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a =
            GossipStats { steps: 1, messages_sent: 10, messages_dropped: 2, triplets_sent: 100 };
        let b = GossipStats { steps: 2, messages_sent: 5, messages_dropped: 0, triplets_sent: 50 };
        a.absorb(&b);
        assert_eq!(
            a,
            GossipStats { steps: 3, messages_sent: 15, messages_dropped: 2, triplets_sent: 150 }
        );
    }

    #[test]
    fn diff_inverts_absorb() {
        let before =
            GossipStats { steps: 1, messages_sent: 10, messages_dropped: 2, triplets_sent: 100 };
        let delta =
            GossipStats { steps: 2, messages_sent: 5, messages_dropped: 1, triplets_sent: 50 };
        let mut after = before;
        after.absorb(&delta);
        assert_eq!(after.diff(&before), delta);
        // Diffing against itself is the zero delta.
        assert_eq!(after.diff(&after), GossipStats::default());
    }

    #[test]
    fn drop_rate_handles_zero() {
        assert_eq!(GossipStats::default().drop_rate(), 0.0);
        let s = GossipStats { messages_sent: 4, messages_dropped: 1, ..Default::default() };
        assert_eq!(s.drop_rate(), 0.25);
    }
}
