//! Property-based tests for the discrete-event substrate.

use gossiptrust_core::id::NodeId;
use gossiptrust_simnet::{ChurnModel, EventQueue, LinkModel, Overlay};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The event queue dequeues in nondecreasing time order with FIFO ties,
    /// for any schedule built at time zero.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last_time = 0u64;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut count = 0;
        while let Some((t, idx)) = q.pop() {
            count += 1;
            prop_assert!(t >= last_time, "time went backwards");
            if t != last_time {
                seen_at_time.clear();
                last_time = t;
            }
            // FIFO within a timestamp: payload indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev, "tie broken out of order");
            }
            seen_at_time.push(idx);
            prop_assert_eq!(times[idx], t, "payload matched to wrong time");
        }
        prop_assert_eq!(count, times.len());
    }

    /// Random k-out overlays are simple (no loops/duplicates), symmetric,
    /// and respect the minimum degree.
    #[test]
    fn k_out_overlay_invariants(n in 4usize..80, k in 1usize..6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let o = Overlay::random_k_out(n, k, &mut rng);
        for i in 0..n {
            let id = NodeId::from_index(i);
            let mut ns = o.neighbors(id).to_vec();
            let len = ns.len();
            ns.sort_unstable();
            ns.dedup();
            prop_assert_eq!(ns.len(), len, "duplicate edge at {}", i);
            prop_assert!(!ns.contains(&(i as u32)), "self loop at {}", i);
            for &j in &ns {
                prop_assert!(o.neighbors(NodeId(j)).contains(&(i as u32)), "asymmetric {}-{}", i, j);
            }
            prop_assert!(o.degree(id) >= k.min(n - 1), "degree {} < k at {}", o.degree(id), i);
        }
    }

    /// Taking nodes offline only ever shrinks the online-neighbor sets and
    /// the online-node list; bringing them back restores both exactly.
    #[test]
    fn offline_online_roundtrip(
        n in 4usize..50,
        seed in 0u64..500,
        down in proptest::collection::hash_set(0usize..50, 0..10),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut o = Overlay::random_k_out(n, 3, &mut rng);
        let before_online = o.online_nodes();
        let before_neighbors: Vec<Vec<NodeId>> =
            (0..n).map(|i| o.online_neighbors(NodeId::from_index(i))).collect();
        let down: Vec<usize> = down.into_iter().filter(|&d| d < n).collect();
        for &d in &down {
            o.go_offline(NodeId::from_index(d));
        }
        for i in 0..n {
            let after = o.online_neighbors(NodeId::from_index(i));
            prop_assert!(after.len() <= before_neighbors[i].len());
            for id in &after {
                prop_assert!(before_neighbors[i].contains(id));
            }
        }
        for &d in &down {
            o.go_online(NodeId::from_index(d));
        }
        prop_assert_eq!(o.online_nodes(), before_online);
        for i in 0..n {
            prop_assert_eq!(
                o.online_neighbors(NodeId::from_index(i)).len(),
                before_neighbors[i].len()
            );
        }
    }

    /// Link samples always land within the configured latency window, and
    /// the empirical drop rate tracks the configured one.
    #[test]
    fn link_model_bounds(lo in 1u64..1000, span in 0u64..1000, p in 0.0f64..0.9, seed in 0u64..200) {
        let hi = lo + span;
        let link = LinkModel { min_latency: lo, max_latency: hi, drop_rate: p };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut drops = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            match link.sample(&mut rng) {
                Some(d) => prop_assert!((lo..=hi).contains(&d)),
                None => drops += 1,
            }
        }
        let emp = drops as f64 / trials as f64;
        prop_assert!((emp - p).abs() < 0.08, "drop rate {} vs configured {}", emp, p);
    }

    /// Churn availability equals session / (session + offline), and all
    /// samples are positive.
    #[test]
    fn churn_availability(sess in 1u64..10_000_000, off in 1u64..10_000_000, seed in 0u64..100) {
        let c = ChurnModel::new(sess, off);
        let expect = sess as f64 / (sess + off) as f64;
        prop_assert!((c.availability() - expect).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(c.sample_session(&mut rng) >= 1);
            prop_assert!(c.sample_offline(&mut rng) >= 1);
        }
    }
}
