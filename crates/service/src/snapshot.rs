//! Immutable, versioned score snapshots and their publication point.
//!
//! A [`ScoreSnapshot`] is produced once per successful epoch and never
//! mutated afterwards; every query runs entirely against one snapshot, so a
//! reader can never observe a half-published epoch. Publication is a single
//! pointer swap through the [`SnapshotCell`].

use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_gossip::stats::GossipStats;
use gossiptrust_storage::ranks::{RankStorage, RankStorageConfig};
use std::sync::{Arc, RwLock};

/// One epoch's worth of published reputation state.
///
/// Everything a query needs is precomputed here: exact scores, the exact
/// descending ranking, a dense rank lookup table, and the space-efficient
/// Bloom rank buckets the paper's storage scheme provides. The inputs that
/// produced the snapshot (`matrix`, `start`, `seed`) are retained so any
/// epoch can be re-verified bit-for-bit offline by re-running the
/// aggregation with the same seed.
#[derive(Clone, Debug)]
pub struct ScoreSnapshot {
    /// Monotonically increasing publication version (0 = bootstrap uniform).
    pub version: u64,
    /// Epoch counter that produced this snapshot (0 = bootstrap; epochs
    /// count from 1 and a failed epoch consumes its number without
    /// producing a snapshot, so `epoch` may skip values).
    pub epoch: u64,
    /// RNG seed the aggregation ran with (bootstrap: the service base seed).
    pub seed: u64,
    /// The vector the aggregation warm-started from.
    pub start: ReputationVector,
    /// The folded trust matrix the epoch aggregated (`None` only for the
    /// bootstrap snapshot, which precedes any fold).
    pub matrix: Option<Arc<TrustMatrix>>,
    /// The converged global reputation scores.
    pub vector: ReputationVector,
    /// Exact descending ranking (ties broken by ascending id).
    pub ranking: Vec<NodeId>,
    /// Dense rank lookup: `rank_of[i]` is the 0-based rank of peer `i`.
    pub rank_of: Vec<u32>,
    /// Bloom-bucketed rank levels (the paper's storage scheme).
    pub ranks: RankStorage,
    /// Gossip activity of exactly this epoch (engine counter delta).
    pub gossip: GossipStats,
    /// Power-iteration cycles the epoch ran.
    pub cycles: usize,
    /// Whether the aggregation reported outer convergence.
    pub converged: bool,
    /// Wall-clock milliseconds the epoch spent (fold + aggregate + build).
    pub wall_ms: f64,
}

impl ScoreSnapshot {
    /// Bootstrap snapshot: uniform scores over `n` peers, version 0.
    ///
    /// Published at service start so queries are answerable before the
    /// first epoch completes.
    pub fn bootstrap(n: usize, seed: u64, rank_config: RankStorageConfig) -> Self {
        let vector = ReputationVector::uniform(n);
        Self::from_vector(
            0,
            0,
            seed,
            vector.clone(),
            None,
            vector,
            rank_config,
            GossipStats::default(),
            0,
            true,
            0.0,
        )
    }

    /// Build a snapshot from a converged vector, precomputing the ranking,
    /// the dense rank table, and the Bloom rank buckets.
    #[allow(clippy::too_many_arguments)]
    pub fn from_vector(
        version: u64,
        epoch: u64,
        seed: u64,
        start: ReputationVector,
        matrix: Option<Arc<TrustMatrix>>,
        vector: ReputationVector,
        rank_config: RankStorageConfig,
        gossip: GossipStats,
        cycles: usize,
        converged: bool,
        wall_ms: f64,
    ) -> Self {
        let ranking = vector.ranking();
        let mut rank_of = vec![0u32; vector.n()];
        for (rank, id) in ranking.iter().enumerate() {
            if let Some(slot) = rank_of.get_mut(id.index()) {
                *slot = rank as u32;
            }
        }
        let rank_config =
            RankStorageConfig { levels: rank_config.levels.min(vector.n().max(1)), ..rank_config };
        let ranks = RankStorage::build(&vector, rank_config);
        ScoreSnapshot {
            version,
            epoch,
            seed,
            start,
            matrix,
            vector,
            ranking,
            rank_of,
            ranks,
            gossip,
            cycles,
            converged,
            wall_ms,
        }
    }

    /// Number of peers covered.
    pub fn n(&self) -> usize {
        self.vector.n()
    }

    /// Exact 0-based rank of `peer` (0 = most reputable). An out-of-range
    /// peer ranks last rather than panicking on the serving path.
    pub fn exact_rank(&self, peer: NodeId) -> u32 {
        self.rank_of
            .get(peer.index())
            .copied()
            .unwrap_or(self.rank_of.len() as u32)
    }

    /// Approximate rank level from the Bloom buckets (see
    /// [`RankStorage::rank_level`]).
    pub fn bloom_rank_level(&self, peer: NodeId) -> usize {
        self.ranks.rank_level(peer)
    }
}

/// The publication point readers race through: holds the latest
/// [`ScoreSnapshot`] behind an `Arc` and swaps it atomically per epoch.
///
/// The workspace's pinned dependency set has no atomic-`Arc` crate, so the
/// swap is a `std::sync::RwLock<Arc<_>>`: readers take the shared lock just
/// long enough to clone the `Arc` (one refcount increment — no allocation,
/// no I/O, no user code), then drop it and run the query on the immutable
/// snapshot. The single writer (the epoch loop) holds the exclusive lock
/// only for the pointer store, once per epoch. Readers therefore never
/// block on an aggregation, only — fleetingly and rarely — on the swap
/// instruction itself, which is the same guarantee an atomic pointer swap
/// gives.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<ScoreSnapshot>>,
}

impl SnapshotCell {
    /// Start with `initial` as the live snapshot.
    pub fn new(initial: ScoreSnapshot) -> Self {
        SnapshotCell { current: RwLock::new(Arc::new(initial)) }
    }

    /// Clone out the latest published snapshot.
    pub fn load(&self) -> Arc<ScoreSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publish `next` as the live snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `next.version` does not increase — versions are the
    /// torn-read guard, so a regression is a logic bug worth dying loudly on.
    pub fn publish(&self, next: ScoreSnapshot) {
        let next = Arc::new(next);
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        assert!(
            next.version > slot.version,
            "snapshot version must increase: {} -> {}",
            slot.version,
            next.version
        );
        *slot = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(values: Vec<f64>) -> ReputationVector {
        ReputationVector::from_weights(values).expect("valid weights")
    }

    #[test]
    fn bootstrap_is_uniform_version_zero() {
        let s = ScoreSnapshot::bootstrap(5, 42, RankStorageConfig::default());
        assert_eq!(s.version, 0);
        assert_eq!(s.n(), 5);
        assert!(s.matrix.is_none());
        for i in 0..5 {
            assert!((s.vector.score(NodeId::from_index(i)) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_table_matches_ranking() {
        let s = ScoreSnapshot::from_vector(
            1,
            1,
            7,
            ReputationVector::uniform(4),
            None,
            vec_of(vec![0.1, 0.4, 0.2, 0.3]),
            RankStorageConfig { levels: 2, fp_rate: 0.01 },
            GossipStats::default(),
            3,
            true,
            1.0,
        );
        assert_eq!(s.ranking, vec![NodeId(1), NodeId(3), NodeId(2), NodeId(0)]);
        assert_eq!(s.exact_rank(NodeId(1)), 0);
        assert_eq!(s.exact_rank(NodeId(0)), 3);
        // Bloom levels never demote below the exact bucket (fp only promotes).
        assert!(s.bloom_rank_level(NodeId(1)) <= 1);
    }

    #[test]
    fn cell_publishes_monotonic_versions() {
        let cell = SnapshotCell::new(ScoreSnapshot::bootstrap(3, 0, RankStorageConfig::default()));
        assert_eq!(cell.load().version, 0);
        let next = ScoreSnapshot::from_vector(
            1,
            1,
            0,
            ReputationVector::uniform(3),
            None,
            vec_of(vec![0.5, 0.25, 0.25]),
            RankStorageConfig { levels: 2, fp_rate: 0.01 },
            GossipStats::default(),
            1,
            true,
            0.5,
        );
        cell.publish(next);
        assert_eq!(cell.load().version, 1);
        assert_eq!(cell.load().exact_rank(NodeId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "version must increase")]
    fn version_regression_panics() {
        let cell = SnapshotCell::new(ScoreSnapshot::bootstrap(3, 0, RankStorageConfig::default()));
        cell.publish(ScoreSnapshot::bootstrap(3, 0, RankStorageConfig::default()));
    }

    #[test]
    fn readers_hold_old_snapshot_across_publish() {
        let cell = SnapshotCell::new(ScoreSnapshot::bootstrap(3, 0, RankStorageConfig::default()));
        let held = cell.load();
        let next = ScoreSnapshot::from_vector(
            1,
            1,
            0,
            ReputationVector::uniform(3),
            None,
            vec_of(vec![0.6, 0.2, 0.2]),
            RankStorageConfig { levels: 2, fp_rate: 0.01 },
            GossipStats::default(),
            1,
            true,
            0.5,
        );
        cell.publish(next);
        // The held Arc still sees the old, fully consistent snapshot.
        assert_eq!(held.version, 0);
        assert_eq!(cell.load().version, 1);
    }
}
