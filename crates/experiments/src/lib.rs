//! # gossiptrust-experiments
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation (§6), plus the ablations called out in
//! DESIGN.md. Each experiment is a library function returning structured
//! rows (so it is unit-testable at reduced scale) with a thin binary that
//! prints the table:
//!
//! | paper artifact | binary |
//! |----------------|--------|
//! | Table 1 / Fig. 2 (worked example) | `table1` |
//! | Fig. 3 (gossip steps vs ε, three network sizes) | `fig3` |
//! | Table 3 (errors under three (ε, δ) settings) | `table3` |
//! | Fig. 4(a) (RMS error vs % independent malicious, α sweep) | `fig4a` |
//! | Fig. 4(b) (RMS error vs collusion group size) | `fig4b` |
//! | Fig. 5 (query success rate, GossipTrust vs NoTrust) | `fig5` |
//! | ablations (EigenTrust cost, Bloom storage, loss, power nodes, …) | `ablation_*` |
//! | everything | `all` |
//!
//! Scale control: set `GT_QUICK=1` to run every experiment at reduced
//! network size / seed count (used by CI); the default is the paper scale
//! recorded in EXPERIMENTS.md. `GT_SEEDS` and `GT_N` override seed count
//! and network size; `GT_THREADS` pins the gossip engine's worker thread
//! count (results are bit-identical for any value, only wall time moves).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
pub mod scale;
pub mod stats;
pub mod table;

pub use scale::{gossip_threads, Scale};
pub use table::TextTable;
